"""Latency-histogram edge cases (repro.obs.aggregate.percentile).

Empty populations must yield the deterministic sentinel (never NaN or
an IndexError), and a single sample must answer every percentile with
itself — p50 and p99 agree by construction.
"""

import pytest

from repro.obs import percentile
from repro.obs.aggregate import op_latencies
from repro.obs.events import EventBus


def test_percentile_empty_returns_default_sentinel():
    assert percentile([], 0.5) is None
    assert percentile([], 0.99, default=-1.0) == -1.0
    assert percentile((), 0.0) is None


def test_percentile_single_sample_all_quantiles_agree():
    for q in (0.0, 0.5, 0.99, 1.0):
        assert percentile([42.0], q) == 42.0


def test_percentile_is_monotone_and_clamped():
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    got = [percentile(vals, q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
    assert got == sorted(got)
    assert percentile(vals, 0.0) == 1.0
    assert percentile(vals, 1.0) == 5.0
    # out-of-range quantiles clamp rather than index out of bounds
    assert percentile(vals, -0.5) == 1.0
    assert percentile(vals, 7.0) == 5.0


def test_percentile_is_nearest_rank_on_real_samples():
    # no interpolation: the answer is always an observed sample
    vals = [1.0, 10.0, 100.0]
    for q in (0.0, 0.3, 0.5, 0.9, 1.0):
        assert percentile(vals, q) in vals


def test_op_latencies_empty_stream_has_no_rows():
    assert op_latencies([]) == {}


def test_op_latencies_single_op_p50_equals_p99():
    bus = EventBus()
    bus.emit("op.begin", 0.0, "w0", op="insert")
    bus.emit("op.end", 10.0, "w0", op="insert")
    rows = op_latencies(bus.events)
    row = rows["insert"]
    assert row["count"] == 1
    assert row["p50_ns"] == row["p99_ns"] == row["max_ns"] == 10.0
