"""Event bus + aggregator tests: emission wiring and the folds over it.

These tests pin the contracts docs/OBSERVABILITY.md documents: which
engine transitions emit which events, that timestamps come from the
simulated clock, that wait intervals reconcile exactly with the lock
statistics, and that the aggregators are pure folds (same events in,
same numbers out).
"""

import pytest

from repro.obs import (
    EventBus,
    collaboration_counters,
    op_latencies,
    utilization_timeline,
    wait_intervals,
)
from repro.obs.events import (
    COND_WAIT,
    COND_WAKE,
    LOCK_ACQUIRE,
    LOCK_CONTEND,
    LOCK_GRANT,
    LOCK_RELEASE,
    LOCK_TIMEOUT,
    LOCK_TRY_FAIL,
    OP_BEGIN,
    OP_END,
    THREAD_FINISH,
    THREAD_START,
    TraceEvent,
)
from repro.sim import (
    Acquire,
    AcquireTimeout,
    Compute,
    Condition,
    Engine,
    Release,
    Signal,
    SimLock,
    TryAcquire,
    Wait,
)


def _types(bus):
    return [ev.etype for ev in bus.events]


def test_thread_lifecycle_and_uncontended_lock_events():
    bus = EventBus()
    eng = Engine(obs=bus)
    lock = SimLock("L")

    def w():
        yield Acquire(lock)
        yield Compute(5.0)
        yield Release(lock)

    eng.spawn(w(), name="solo")
    eng.run()
    types = _types(bus)
    assert types == [THREAD_START, LOCK_ACQUIRE, LOCK_RELEASE, THREAD_FINISH]
    acq = bus.events[1]
    assert acq.thread == "solo"
    assert acq.get("lock") == "L"
    assert acq.ts == pytest.approx(0.0)
    assert bus.events[2].ts == pytest.approx(5.0)


def test_contended_lock_emits_contend_then_grant():
    bus = EventBus()
    eng = Engine(obs=bus)
    lock = SimLock("L")

    def w():
        yield Acquire(lock)
        yield Compute(10.0)
        yield Release(lock)

    eng.spawn(w(), name="a")
    eng.spawn(w(), name="b")
    eng.run()
    contends = [e for e in bus.events if e.etype == LOCK_CONTEND]
    grants = [e for e in bus.events if e.etype == LOCK_GRANT]
    assert len(contends) == 1 and contends[0].thread == "b"
    assert len(grants) == 1 and grants[0].thread == "b"
    assert grants[0].get("waited") == pytest.approx(10.0)
    # grant timestamp is the simulated handover instant
    assert grants[0].ts == pytest.approx(10.0)


def test_try_acquire_failure_and_timeout_events():
    bus = EventBus()
    eng = Engine(obs=bus)
    lock = SimLock("L")

    def holder():
        yield Acquire(lock)
        yield Compute(100.0)
        yield Release(lock)

    def trier():
        yield Compute(1.0)
        got = yield TryAcquire(lock)
        assert got is False

    def impatient():
        yield Compute(2.0)
        got = yield AcquireTimeout(lock, timeout_ns=10.0)
        assert got is False

    eng.spawn(holder(), name="h")
    eng.spawn(trier(), name="t")
    eng.spawn(impatient(), name="i")
    eng.run()
    fails = [e for e in bus.events if e.etype == LOCK_TRY_FAIL]
    touts = [e for e in bus.events if e.etype == LOCK_TIMEOUT]
    assert [e.thread for e in fails] == ["t"]
    assert [e.thread for e in touts] == ["i"]
    assert touts[0].ts == pytest.approx(12.0)  # deadline, not discovery


def test_condition_wait_wake_events_carry_waited():
    bus = EventBus()
    eng = Engine(obs=bus)
    cond = Condition("C")

    def waiter():
        yield Wait(cond)

    def signaller():
        yield Compute(7.0)
        yield Signal(cond)

    eng.spawn(waiter(), name="w")
    eng.spawn(signaller(), name="s")
    eng.run()
    waits = [e for e in bus.events if e.etype == COND_WAIT]
    wakes = [e for e in bus.events if e.etype == COND_WAKE]
    assert [e.thread for e in waits] == ["w"]
    assert [e.thread for e in wakes] == ["w"]
    assert wakes[0].get("waited") == pytest.approx(wakes[0].ts - waits[0].ts)


def test_wait_intervals_reconcile_exactly_with_lock_totals():
    """The event-sourced wait intervals must sum to exactly the wait the
    locks themselves accounted — the cross-check that makes the obs
    layer trustworthy."""
    from repro.obs.workload import run_traced_mixed

    run = run_traced_mixed(threads=4, ops=6, k=8, seed=3)
    by_thread = wait_intervals(run.events)
    event_total = sum(
        end - start for ivs in by_thread.values() for start, end, _ in ivs
    )
    pq = run.pq
    lock_total = sum(lk.total_wait_ns for lk in pq.store.locks)
    lock_total += pq.root_avail.total_wait_ns + pq.node_filled.total_wait_ns
    assert event_total == pytest.approx(lock_total, rel=1e-12)


def test_emit_here_without_engine_uses_sequence_timestamps():
    bus = EventBus()
    bus.emit_here(OP_BEGIN, op="insert")
    bus.emit_here(OP_END, op="insert")
    assert [e.thread for e in bus.events] == ["host", "host"]
    assert bus.events[0].ts < bus.events[1].ts


def test_bus_clear_and_len():
    bus = EventBus()
    bus.emit(OP_BEGIN, ts=0.0, thread="t", op="x")
    assert len(bus) == 1
    bus.clear()
    assert len(bus) == 0 and list(bus) == []


def test_collaboration_counters_zero_keys_always_present():
    c = collaboration_counters([])
    for key in ("collab_steals", "pbuffer_hits", "pbuffer_overflows",
                "root_refills", "sort_splits", "lock_acquisitions"):
        assert c[key] == 0


def test_op_latencies_pair_per_thread():
    evs = [
        TraceEvent(0.0, "a", OP_BEGIN, {"op": "insert"}),
        TraceEvent(1.0, "b", OP_BEGIN, {"op": "insert"}),
        TraceEvent(4.0, "a", OP_END, {"op": "insert"}),
        TraceEvent(9.0, "b", OP_END, {"op": "insert"}),
    ]
    lats = op_latencies(evs)
    assert lats["insert"]["count"] == 2
    assert lats["insert"]["min_ns"] == pytest.approx(4.0)
    assert lats["insert"]["max_ns"] == pytest.approx(8.0)
    assert lats["insert"]["mean_ns"] == pytest.approx(6.0)


def test_utilization_timeline_buckets_partition_the_run():
    evs = [
        TraceEvent(0.0, "t", THREAD_START, {}),
        TraceEvent(100.0, "t", THREAD_FINISH, {}),
    ]
    tl = utilization_timeline(evs, makespan_ns=100.0, buckets=4)
    assert tl["n_threads"] == 1
    assert len(tl["buckets"]) == 4
    for row in tl["buckets"]:
        assert row["busy"] + row["wait"] + row["idle"] == pytest.approx(1.0)
    # thread alive and never waiting => fully busy
    assert tl["totals"]["busy_frac"] == pytest.approx(1.0)
    assert tl["totals"]["wait_frac"] == pytest.approx(0.0)


def test_utilization_timeline_degenerate_inputs():
    assert utilization_timeline([], 0.0)["buckets"] == []
    assert utilization_timeline([], 100.0)["n_threads"] == 0
