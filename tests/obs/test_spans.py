"""Span-tree builder and phase-partition tests (repro.obs.spans)."""

import pytest

from repro.obs.spans import (
    PHASES,
    build_span_trees,
    is_root_lock,
    lifetimes,
    op_intervals,
    phase_partition,
    wait_records,
)
from repro.obs.workload import run_traced_mixed


@pytest.fixture(scope="module")
def run():
    return run_traced_mixed(threads=4, ops=4, k=8, seed=1)


def test_is_root_lock_matches_storage_naming():
    assert is_root_lock("bgpq.n1")
    assert is_root_lock("pq2.n1")
    assert not is_root_lock("bgpq.n2")
    assert not is_root_lock("bgpq.n10")
    assert not is_root_lock("bgpq.root_avail")


def test_lifetimes_cover_every_worker(run):
    life = lifetimes(run.events, run.makespan_ns)
    assert set(life) == {f"w{i}" for i in range(4)}
    for start, finish in life.values():
        assert 0 <= start <= finish <= run.makespan_ns


def test_op_intervals_are_disjoint_and_in_lifetime(run):
    life = lifetimes(run.events, run.makespan_ns)
    ops = op_intervals(run.events, run.makespan_ns)
    for thread, ivals in ops.items():
        start, finish = life[thread]
        prev_end = start
        for t0, t1, op in ivals:
            assert op in ("insert", "deletemin")
            assert prev_end <= t0 <= t1 <= finish
            prev_end = t1


def test_wait_records_blockers_are_other_threads(run):
    recs = wait_records(run.events)
    assert recs, "contended default workload must produce waits"
    threads = set(recs)
    for waiter, rows in recs.items():
        for rec in rows:
            assert rec["t0"] <= rec["t1"]
            if rec["how"] in ("grant", "wake"):
                assert rec["blocker"] in threads
                assert rec["blocker"] != waiter


def test_phase_partition_is_exact_cover(run):
    """Every thread's partition tiles [0, makespan] with shared endpoints."""
    partition = phase_partition(run.events, run.makespan_ns)
    for thread, pieces in partition.items():
        assert pieces[0][0] == 0.0
        assert pieces[-1][1] == run.makespan_ns
        for (a0, a1, phase), (b0, _b1, _p) in zip(pieces, pieces[1:]):
            assert a1 == b0, f"{thread}: gap/overlap at {a1} vs {b0}"
        for a, b, phase in pieces:
            assert a < b
            assert phase in PHASES


def test_span_tree_children_nest_inside_parents(run):
    trees = build_span_trees(run.events, run.makespan_ns)
    assert set(trees) == {f"w{i}" for i in range(4)}
    kinds = set()
    for root in trees.values():
        for span in root.walk():
            kinds.add(span.cat)
            for child in span.children:
                assert span.t0 <= child.t0 <= child.t1 <= span.t1
    assert "op" in kinds
    assert "sort_split" in kinds
    assert "wait" in kinds or "hold" in kinds
