"""Run-diff engine tests (repro.obs.compare)."""

import json

import pytest

from repro.obs import (
    ANALYSIS_SCHEMA,
    AnalysisFormatError,
    analyze,
    diff_analyses,
    load_analysis,
    render_diff,
)
from repro.obs.compare import validate_analysis
from repro.obs.workload import run_traced_mixed


def _capture(seed: int) -> dict:
    run = run_traced_mixed(threads=4, ops=4, k=8, seed=seed)
    return analyze(run.events, run.makespan_ns)


def _payload(attribution, makespan=100.0, **extra):
    return {
        "schema": ANALYSIS_SCHEMA,
        "makespan_ns": makespan,
        "attribution": attribution,
        **extra,
    }


def test_diff_names_top_regressor_deterministically():
    a, b = _capture(1), _capture(2)
    d1 = diff_analyses(a, b)
    d2 = diff_analyses(a, b)
    assert d1 == d2
    assert json.dumps(d1, sort_keys=True) == json.dumps(d2, sort_keys=True)
    grew = [r for r in d1["phases"] if r["delta_ns"] > 0]
    if grew:
        worst = max(grew, key=lambda r: r["delta_ns"])
        assert d1["top_regressor"] == worst["phase"]
    else:
        assert d1["top_regressor"] is None


def test_diff_tie_breaks_alphabetically():
    a = _payload({"compute": 10.0, "idle": 10.0})
    b = _payload({"compute": 15.0, "idle": 15.0})
    assert diff_analyses(a, b)["top_regressor"] == "compute"


def test_diff_no_growth_means_no_regressor():
    a = _payload({"compute": 10.0})
    assert diff_analyses(a, a)["top_regressor"] is None


def test_diff_identity_is_all_zero():
    a = _capture(1)
    d = diff_analyses(a, a)
    assert d["makespan_delta_ns"] == 0
    assert all(r["delta_ns"] == 0 for r in d["phases"])
    assert d["counter_deltas"] == {}


def test_diff_phase_rows_follow_canonical_order():
    a, b = _capture(1), _capture(2)
    d = diff_analyses(a, b)
    names = [r["phase"] for r in d["phases"]]
    assert names == sorted(names, key=lambda n: (
        ("root_serialization", "hand_over_hand", "steal_protocol",
         "compute", "idle").index(n) if n in (
            "root_serialization", "hand_over_hand", "steal_protocol",
            "compute", "idle") else 99,
        n,
    ))


def test_render_diff_prints_delta_table():
    text = render_diff(diff_analyses(_capture(1), _capture(2), "base", "cur"))
    assert "run diff base -> cur" in text
    assert "top regressor:" in text
    assert "root_serialization" in text


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ([], "top level must be a JSON object"),
        ({"schema": "other/v9"}, "does not match"),
        ({"schema": ANALYSIS_SCHEMA, "makespan_ns": -1,
          "attribution": {"compute": 1}}, "makespan_ns"),
        ({"schema": ANALYSIS_SCHEMA, "makespan_ns": 1, "attribution": {}},
         "non-empty"),
        ({"schema": ANALYSIS_SCHEMA, "makespan_ns": 1,
          "attribution": {"compute": "lots"}}, "phase -> ns"),
    ],
)
def test_validate_analysis_rejects_bad_payloads(payload, fragment):
    with pytest.raises(AnalysisFormatError, match=fragment):
        validate_analysis(payload)


def test_load_analysis_errors_are_format_errors(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(AnalysisFormatError, match="cannot read"):
        load_analysis(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{truncated")
    with pytest.raises(AnalysisFormatError, match="not valid JSON"):
        load_analysis(bad)


def test_load_analysis_roundtrips_a_real_capture(tmp_path):
    payload = _capture(1)
    path = tmp_path / "cap.json"
    path.write_text(json.dumps(payload, sort_keys=True))
    assert load_analysis(path) == payload
