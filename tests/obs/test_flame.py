"""Collapsed-stack export tests (repro.obs.flame), incl. the golden file."""

from pathlib import Path

import pytest

from repro.obs import collapsed_stacks, render_flame, validate_collapsed
from repro.obs.workload import run_traced_mixed

GOLDEN = Path(__file__).parent / "golden" / "flame_seed1.txt"


def _small_run():
    return run_traced_mixed(threads=2, ops=2, k=4, seed=1)


def test_collapsed_output_matches_golden_file():
    """Byte-identical collapsed stacks for the pinned small workload.

    Regenerate intentionally with:
        python - <<'EOF'
        from repro.obs import collapsed_stacks
        from repro.obs.workload import run_traced_mixed
        run = run_traced_mixed(threads=2, ops=2, k=4, seed=1)
        print("\\n".join(collapsed_stacks(run.events, run.makespan_ns)))
        EOF
    """
    run = _small_run()
    text = "\n".join(collapsed_stacks(run.events, run.makespan_ns)) + "\n"
    assert text == GOLDEN.read_text()


def test_collapsed_output_validates_and_is_sorted():
    run = run_traced_mixed(threads=4, ops=4, k=8, seed=2)
    lines = collapsed_stacks(run.events, run.makespan_ns)
    assert validate_collapsed("\n".join(lines)) == []
    assert lines == sorted(lines)


def test_collapsed_totals_account_for_every_thread():
    """Per-thread stack values sum to the makespan (up to per-line
    integer rounding), so frame widths are comparable across threads."""
    run = run_traced_mixed(threads=4, ops=4, k=8, seed=2)
    lines = collapsed_stacks(run.events, run.makespan_ns)
    per_thread: dict[str, int] = {}
    for line in lines:
        stack, value = line.rsplit(" ", 1)
        thread = stack.split(";", 1)[0]
        per_thread[thread] = per_thread.get(thread, 0) + int(value)
    assert set(per_thread) == {f"w{i}" for i in range(4)}
    for thread, total in per_thread.items():
        assert abs(total - run.makespan_ns) <= len(lines)


def test_collapsed_is_deterministic():
    runs = [_small_run() for _ in range(2)]
    outs = [collapsed_stacks(r.events, r.makespan_ns) for r in runs]
    assert outs[0] == outs[1]


@pytest.mark.parametrize(
    "bad, fragment",
    [
        ("stackonly\n", "expected 'stack value'"),
        ("a;b -12\n", "not a non-negative int"),
        ("a;b 1.5\n", "not a non-negative int"),
        ("a;;b 3\n", "malformed stack"),
        ("a b;c 3\n", "malformed stack"),
    ],
)
def test_validate_collapsed_rejects_malformed_lines(bad, fragment):
    problems = validate_collapsed(bad)
    assert problems
    assert fragment in problems[0]


def test_validate_collapsed_accepts_blank_lines():
    assert validate_collapsed("a;b 3\n\nc 4\n") == []


def test_render_flame_shows_hierarchy_and_totals():
    run = _small_run()
    lines = collapsed_stacks(run.events, run.makespan_ns)
    text = render_flame(lines)
    assert "flamegraph (total thread-time" in text
    assert "root_serialization" in text
    assert "w0" in text and "w1" in text


def test_render_flame_empty_input():
    assert "(empty)" in render_flame([])
