"""Critical-path / attribution properties (repro.obs.analysis).

The load-bearing invariants from the issue's acceptance criteria:
attribution sums *exactly* to the makespan (no epsilon — the Fraction
cross-check), the non-idle critical path never exceeds the makespan,
and the whole payload is byte-deterministic for a fixed seed.
"""

import json

import pytest

from repro.obs import PHASES, analyze, critical_path, render_analysis, wait_for_graph
from repro.obs.workload import run_traced_mixed


@pytest.fixture(scope="module")
def run():
    return run_traced_mixed(threads=4, ops=6, k=8, seed=3)


@pytest.fixture(scope="module")
def analysis(run):
    return analyze(run.events, run.makespan_ns)


def test_attribution_sums_exactly_to_makespan(analysis):
    assert analysis["attribution_exact"] is True
    # the rounded floats also agree to rounding precision
    total = sum(analysis["attribution"].values())
    assert abs(total - analysis["makespan_ns"]) < 1e-6 * len(analysis["attribution"])


def test_critical_path_never_exceeds_makespan(analysis):
    assert 0 < analysis["critical_path_ns"] <= analysis["makespan_ns"]


def test_segments_tile_the_makespan_contiguously(run):
    segs = critical_path(run.events, run.makespan_ns)
    assert segs[0]["t0_ns"] == 0.0
    assert segs[-1]["t1_ns"] == run.makespan_ns
    for a, b in zip(segs, segs[1:]):
        assert a["t1_ns"] == b["t0_ns"]
    for seg in segs:
        assert seg["t0_ns"] < seg["t1_ns"]
        assert seg["phase"] in PHASES


def test_analyze_is_byte_deterministic_for_a_seed():
    def capture():
        run = run_traced_mixed(threads=4, ops=4, k=8, seed=7)
        return json.dumps(analyze(run.events, run.makespan_ns), sort_keys=True)

    assert capture() == capture()


def test_wait_for_graph_edges_are_ranked_and_causal(run):
    graph = wait_for_graph(run.events)
    edges = graph["edges"]
    assert edges, "contended run must produce blocking edges"
    waits = [e["wait_ns"] for e in edges]
    assert waits == sorted(waits, reverse=True)
    for e in edges:
        assert e["count"] >= 1
        assert e["wait_ns"] >= 0
        if e["kind"] == "root_serialization":
            assert e["resource"].endswith(".n1")
        if e["blocker"] != "?":
            assert e["blocker"] != e["waiter"]
    total_edge = sum(e["wait_ns"] for e in edges)
    total_res = sum(r["wait_ns"] for r in graph["by_resource"])
    assert total_edge == pytest.approx(total_res)


def test_root_serialization_dominates_contended_run(analysis):
    """The paper's bottleneck story: at k=8 with 4 threads, the root
    lock dominates the critical path."""
    attr = analysis["attribution"]
    assert attr["root_serialization"] > analysis["makespan_ns"] / 2


def test_render_analysis_mentions_the_essentials(analysis):
    text = render_analysis(analysis)
    assert "attribution exact" in text
    assert "root_serialization" in text
    assert "critical path" in text


def test_analyze_empty_makespan_degenerates_cleanly():
    payload = analyze([], 0.0)
    assert payload["attribution_exact"] is True
    assert payload["segments"] == []
    assert payload["critical_path_ns"] == 0.0
