"""Router placement and probe-set policies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet.router import (
    LOAD_AWARE_POLICIES,
    POLICIES,
    Router,
    _hash_shards,
)


def test_hash_placement_partitions_batch():
    r = Router(4, policy="hash")
    keys = np.arange(1000, dtype=np.int64)
    parts = r.place(keys)
    assert 1 < len(parts) <= 4
    back = np.sort(np.concatenate([sub for _, sub in parts]))
    assert np.array_equal(back, keys)
    for shard, sub in parts:
        assert 0 <= shard < 4
        assert sub.size > 0  # empty shards are omitted


def test_hash_placement_is_deterministic_across_routers():
    keys = np.random.default_rng(0).integers(0, 1 << 40, 500, dtype=np.int64)
    a = _hash_shards(keys, 8)
    b = _hash_shards(keys, 8)
    assert np.array_equal(a, b)
    # roughly uniform: no shard starves on random keys
    counts = np.bincount(a, minlength=8)
    assert counts.min() > 0


def test_hash_handles_negative_keys():
    keys = np.array([-5, -1, 0, 3, -(1 << 50)], dtype=np.int64)
    shards = _hash_shards(keys, 4)
    assert ((shards >= 0) & (shards < 4)).all()


def test_spray_placement_keeps_batch_whole():
    r = Router(8, policy="spray", seed=7)
    keys = np.arange(100, dtype=np.int64)
    for _ in range(20):
        parts = r.place(keys)
        assert len(parts) == 1
        shard, sub = parts[0]
        assert 0 <= shard < 8
        assert sub is keys


def test_spray_is_seed_deterministic():
    keys = np.arange(10, dtype=np.int64)
    seq = [Router(8, policy="spray", seed=3).place(keys)[0][0] for _ in range(3)]
    assert seq[0] == seq[1] == seq[2]


def test_single_shard_short_circuits():
    r = Router(1, policy="hash")
    keys = np.arange(5, dtype=np.int64)
    assert r.place(keys) == [(0, keys)]
    assert r.probe_set() == (0,)


def test_empty_batch_places_nowhere():
    assert Router(4).place(np.empty(0, dtype=np.int64)) == []


def test_probe_set_distinct_and_clamped():
    r = Router(4, spray_width=2, seed=1)
    for _ in range(50):
        probe = r.probe_set()
        assert len(probe) == 2
        assert len(set(probe)) == 2
    wide = Router(3, spray_width=16)
    assert wide.spray_width == 3
    assert wide.probe_set() == (0, 1, 2)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        Router(0)
    with pytest.raises(ConfigurationError):
        Router(4, policy="round-robin")
    with pytest.raises(ConfigurationError):
        Router(4, spray_width=0)
    assert POLICIES == ("hash", "spray", "shortest", "d-choice")
    assert LOAD_AWARE_POLICIES == ("shortest", "d-choice")


def test_shortest_picks_least_loaded_deterministically():
    r = Router(4, policy="shortest")
    keys = np.arange(10, dtype=np.int64)
    loads = [(5.0, 2), (1.0, 9), (1.0, 3), (7.0, 0)]
    # lexical (clock, backlog): shard 2 beats shard 1 on backlog
    assert r.place(keys, loads=loads) == [(2, keys)]
    assert r.last_candidates == (0, 1, 2, 3)
    # exact ties break to the lowest index
    flat = [(0.0, 0)] * 4
    assert r.place(keys, loads=flat) == [(0, keys)]


def test_load_aware_policies_require_loads():
    keys = np.arange(4, dtype=np.int64)
    for pol in LOAD_AWARE_POLICIES:
        with pytest.raises(ConfigurationError):
            Router(4, policy=pol).place(keys)


def test_d_choice_samples_width_candidates_and_picks_min():
    r = Router(8, policy="d-choice", spray_width=3, seed=2)
    keys = np.arange(10, dtype=np.int64)
    loads = [(float(i), 0) for i in range(8)]  # shard 0 globally best
    for _ in range(30):
        [(shard, _sub)] = r.place(keys, loads=loads)
        cands = r.last_candidates
        assert len(cands) == 3 and len(set(cands)) == 3
        # picked the least-loaded of the sampled candidates
        assert shard == min(cands)


def test_resize_reclamps_spray_width_and_keeps_rng():
    r = Router(8, policy="spray", spray_width=4, seed=9)
    r.resize(2)
    assert r.n_shards == 2 and r.spray_width == 2
    r.resize(8)
    assert r.spray_width == 4  # requested width restored after regrow
    keys = np.arange(3, dtype=np.int64)
    assert all(0 <= r.place(keys)[0][0] < 8 for _ in range(10))
    with pytest.raises(ConfigurationError):
        r.resize(0)
