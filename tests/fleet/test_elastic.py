"""Elastic fleet: grow/shrink/rebalance, the controller, and the
migration-aware relaxation budget."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import check_k_relaxed, relaxation_budget
from repro.core.audit import HeapAuditor
from repro.errors import ConfigurationError
from repro.fleet import (
    ElasticController,
    ShardedBGPQ,
    mixed_scripts,
    run_fleet,
)
from repro.obs.events import (
    SHARD_GROW,
    SHARD_PLACE,
    SHARD_REBALANCE,
    SHARD_SHRINK,
    EventBus,
)


def _drain(fleet):
    out = []
    while fleet:
        out.append(fleet.delete_min(min(fleet.k, len(fleet))))
    return np.sort(np.concatenate(out)) if out else np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# grow / shrink primitives
# ---------------------------------------------------------------------------
def test_grow_from_one_shard_and_back():
    fleet = ShardedBGPQ(n_shards=1, node_capacity=8, policy="shortest", seed=0)
    keys = np.arange(40, dtype=np.int64)
    fleet.insert(keys)
    ticket = fleet.grow(1)
    assert ticket.action == "grow" and (ticket.n_before, ticket.n_after) == (1, 2)
    assert fleet.n_shards == 2 and len(fleet.clocks) == 2
    fleet.insert(np.arange(40, 60, dtype=np.int64))
    back = fleet.shrink()  # retire the emptier shard again
    assert back.action == "shrink" and back.n_after == 1
    assert len(fleet) == 60
    assert np.array_equal(_drain(fleet), np.arange(60, dtype=np.int64))
    assert HeapAuditor(fleet).audit().ok


def test_shrink_conserves_multiset_and_size_accounting():
    fleet = ShardedBGPQ(n_shards=4, node_capacity=8, policy="hash", seed=3)
    keys = np.random.default_rng(7).integers(0, 1 << 20, 200).astype(np.int64)
    fleet.insert(keys)
    before = len(fleet)
    ticket = fleet.shrink(victim=1)
    assert ticket.src == 1 and ticket.moved >= 0
    assert fleet.n_shards == 3
    assert len(fleet) == before  # migration never changes the fleet size
    assert HeapAuditor(fleet).audit().ok
    assert np.array_equal(_drain(fleet), np.sort(keys))


def test_shrink_one_shard_fleet_refused():
    fleet = ShardedBGPQ(n_shards=1, node_capacity=8)
    with pytest.raises(ConfigurationError):
        fleet.shrink()
    with pytest.raises(ConfigurationError):
        ShardedBGPQ(n_shards=2, node_capacity=8).shrink(victim=5)


def test_rebalance_moves_batch_from_fullest_to_emptiest():
    fleet = ShardedBGPQ(n_shards=2, node_capacity=8, policy="spray", seed=1)
    # load shard 0 directly so the fleet is maximally imbalanced
    fleet.exec_insert(0, np.arange(64, dtype=np.int64))
    assert fleet.imbalance() == 2.0
    ticket = fleet.rebalance()
    assert ticket is not None and ticket.action == "rebalance"
    assert ticket.src == 0 and ticket.dst == 1
    assert 1 <= ticket.moved <= 8
    assert len(fleet) == 64
    assert HeapAuditor(fleet).audit().ok
    # a balanced fleet refuses to churn
    balanced = ShardedBGPQ(n_shards=2, node_capacity=8)
    balanced.exec_insert(0, np.arange(4, dtype=np.int64))
    balanced.exec_insert(1, np.arange(4, 8, dtype=np.int64))
    assert balanced.rebalance() is None


def test_elastic_actions_emit_obs_events():
    bus = EventBus()
    fleet = ShardedBGPQ(
        n_shards=2, node_capacity=8, policy="d-choice", seed=2, obs=bus
    )
    fleet.insert(np.arange(64, dtype=np.int64))
    fleet.grow(1)
    fleet.rebalance()
    fleet.shrink()
    etypes = [e.etype for e in bus]
    assert SHARD_PLACE in etypes
    assert SHARD_GROW in etypes and SHARD_SHRINK in etypes
    place = next(e for e in bus if e.etype == SHARD_PLACE)
    assert place.get("policy") == "d-choice"
    assert place.get("candidates")  # load-aware policies record the sample
    shrinkev = next(e for e in bus if e.etype == SHARD_SHRINK)
    assert shrinkev.get("before") == shrinkev.get("after") + 1


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------
def test_controller_grows_on_high_water_and_respects_bounds():
    fleet = ShardedBGPQ(n_shards=2, node_capacity=8)
    fleet.insert(np.arange(100, dtype=np.int64))
    ctl = ElasticController(max_shards=3, grow_above=20, shrink_below=1,
                            cooldown=0)
    tickets = ctl.maybe_act(fleet)
    assert [t.action for t in tickets][0] == "grow"
    assert fleet.n_shards == 3
    # at max_shards the controller stops growing
    assert all(t.action != "grow" for t in ctl.maybe_act(fleet))
    assert fleet.n_shards == 3


def test_controller_shrinks_on_low_water_and_cooldown_separates():
    fleet = ShardedBGPQ(n_shards=4, node_capacity=8)
    fleet.insert(np.arange(6, dtype=np.int64))
    ctl = ElasticController(min_shards=2, grow_above=1000, shrink_below=4,
                            cooldown=1)
    first = ctl.maybe_act(fleet)
    assert any(t.action == "shrink" for t in first)
    assert fleet.n_shards == 3
    # cooldown swallows the immediately following structural action
    assert all(t.action == "rebalance" for t in ctl.maybe_act(fleet))
    assert fleet.n_shards == 3
    ctl.maybe_act(fleet)
    assert fleet.n_shards == 2  # min_shards floor
    assert all(t.action != "shrink" for t in ctl.maybe_act(fleet))


def test_controller_config_validation():
    with pytest.raises(ConfigurationError):
        ElasticController(min_shards=0)
    with pytest.raises(ConfigurationError):
        ElasticController(min_shards=4, max_shards=2)
    with pytest.raises(ConfigurationError):
        ElasticController(rebalance_above=0.5)
    with pytest.raises(ConfigurationError):
        ElasticController(cooldown=-1)
    with pytest.raises(ConfigurationError):
        ElasticController(grow_above=8, shrink_below=8).maybe_act(
            ShardedBGPQ(n_shards=2, node_capacity=8)
        )


# ---------------------------------------------------------------------------
# driver integration: resharding under load
# ---------------------------------------------------------------------------
def test_grow_under_load_passes_checker_and_audit():
    fleet = ShardedBGPQ(n_shards=2, node_capacity=16, policy="shortest", seed=4)
    ctl = ElasticController(min_shards=2, max_shards=4, grow_above=32,
                            shrink_below=1, cooldown=0)
    scripts = mixed_scripts(8, 8, 16, seed=5)
    res = run_fleet(fleet, scripts, imbalance_every=8, elastic=ctl)
    assert any(t.action == "grow" for t in ctl.actions)
    budget = relaxation_budget(16, 8, 4, migrated=fleet.stats["migrated"])
    report = check_k_relaxed(res.history, k=budget)
    assert report.ok, report.problems
    assert report.reshards == len(ctl.actions)
    assert res.keys_in - res.keys_out == len(fleet)
    assert HeapAuditor(fleet).audit().ok


def test_shrink_during_in_flight_steals():
    """Shrink fires while queued deletes (with stale plans) are waiting.

    Narrow capacity + many sessions keeps deletemins queued (and
    stealing) at every gauge boundary; an aggressive shrink_below
    retires shards mid-run.  Every queued delete must be re-planned
    against the new topology — an index error or a lost key here is
    exactly the bug this guards against.
    """
    fleet = ShardedBGPQ(n_shards=4, node_capacity=8, policy="spray", seed=6)
    ctl = ElasticController(min_shards=2, max_shards=4, grow_above=10**6,
                            shrink_below=500, cooldown=0)
    scripts = mixed_scripts(12, 10, 8, seed=7)
    res = run_fleet(fleet, scripts, imbalance_every=4, elastic=ctl)
    assert fleet.stats["shrinks"] >= 1
    assert res.stats["steals"] >= 1
    budget = relaxation_budget(8, 12, 4, migrated=fleet.stats["migrated"])
    report = check_k_relaxed(res.history, k=budget)
    assert report.ok, report.problems
    assert report.migrated_keys == fleet.stats["migrated"]
    assert res.keys_in - res.keys_out == len(fleet)
    assert HeapAuditor(fleet).audit().ok


def test_elastic_run_is_deterministic():
    def one_run():
        fleet = ShardedBGPQ(n_shards=2, node_capacity=16, policy="d-choice",
                            seed=9)
        ctl = ElasticController(min_shards=1, max_shards=4, grow_above=48,
                                shrink_below=4, cooldown=1)
        res = run_fleet(fleet, mixed_scripts(6, 8, 16, seed=10),
                        imbalance_every=8, elastic=ctl)
        return (
            res.makespan_ns,
            [t.action for t in ctl.actions],
            [(r.kind, r.args if r.kind != "insert" else len(r.args))
             for r in res.history],
        )

    assert one_run() == one_run()


@given(
    keys=st.lists(
        st.integers(min_value=-(1 << 40), max_value=1 << 40),
        min_size=1, max_size=120,
    ),
    extra=st.lists(
        st.integers(min_value=-(1 << 40), max_value=1 << 40), max_size=60
    ),
    seed=st.integers(min_value=0, max_value=7),
    action=st.sampled_from(["grow", "shrink", "rebalance"]),
)
@settings(max_examples=25, deadline=None)
def test_drain_exact_multiset_across_reshard_boundary(keys, extra, seed, action):
    """Insert, reshard, insert more, drain: nothing lost or invented."""
    fleet = ShardedBGPQ(n_shards=2, node_capacity=8, policy="shortest",
                        seed=seed)
    arr = np.array(keys, dtype=np.int64)
    fleet.insert(arr)
    if action == "grow":
        fleet.grow(1)
    elif action == "shrink":
        fleet.shrink()
    else:
        fleet.rebalance()
    more = np.array(extra, dtype=np.int64)
    if more.size:
        fleet.insert(more)
    expect = np.sort(np.concatenate([arr, more]))
    assert np.array_equal(_drain(fleet), expect)
    assert fleet.check_invariants() == []


# ---------------------------------------------------------------------------
# migration-aware checker semantics
# ---------------------------------------------------------------------------
def test_reshard_records_grant_rank_slack():
    """A delete invoked before a migration gets `moved` extra slack."""
    from dataclasses import dataclass

    @dataclass
    class Rec:
        kind: str
        args: tuple
        result: tuple
        invoke: float = 0.0
        respond: float = 0.0

    history = [
        Rec("insert", tuple(range(10)), ()),
        # delete planned at t=1, but 5 keys migrated at t=2 before it ran:
        # returning key 5 (rank 5) is within the k=1 spec + slack 5
        Rec("reshard", ("rebalance", 5), (), invoke=2.0, respond=2.0),
        Rec("deletemin", (1,), (5,), invoke=1.0, respond=3.0),
    ]
    report = check_k_relaxed(history, k=1)
    assert report.reshards == 1 and report.migrated_keys == 5
    assert report.max_rank == 5  # measured rank is still reported raw
    assert report.rank_violations == 0  # ...but the slack absorbs it
    # a delete invoked after the migration gets no slack
    late = [
        history[0],
        Rec("reshard", ("rebalance", 5), (), invoke=0.5, respond=0.5),
        Rec("deletemin", (1,), (5,), invoke=1.0, respond=3.0),
    ]
    late_report = check_k_relaxed(late, k=1)
    assert late_report.rank_violations == 1


def test_relaxation_budget_closed_form():
    assert relaxation_budget(8, 4, 2) == 2 * 8 * (4 + 2)
    assert relaxation_budget(8, 4, 2, migrated=100) == 2 * 8 * 6 + 100
