"""ShardedBGPQ: routed execution, relaxed deletes, steals, accounting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import ShardedBGPQ
from repro.obs.events import (
    SHARD_OP_BEGIN,
    SHARD_OP_END,
    SHARD_PROBE,
    SHARD_STEAL,
    EventBus,
)


def fleet(n=4, k=16, **kw):
    kw.setdefault("seed", 5)
    return ShardedBGPQ(n_shards=n, node_capacity=k, **kw)


def test_insert_then_drain_exact_multiset():
    f = fleet()
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1000, 200, dtype=np.int64)
    f.insert(keys)
    assert len(f) == 200
    out = []
    while f:
        out.append(f.delete_min(16))
    merged = np.concatenate(out)
    assert np.array_equal(np.sort(merged), np.sort(keys))
    assert len(f) == 0


def test_delete_min_returns_sorted_merged_keys():
    f = fleet()
    f.insert(np.arange(100, dtype=np.int64))
    got = f.delete_min(16)
    assert np.array_equal(got, np.sort(got))
    assert got.size == 16


def test_steal_tops_up_across_shards():
    # hash placement spreads 40 keys over 4 shards (~10 each); a
    # delete of 16 must steal from other shards to fill the batch
    f = fleet(n=4, k=16, policy="hash")
    f.insert(np.arange(40, dtype=np.int64))
    ticket = f.exec_deletemin(16)
    assert ticket.keys.size == 16
    assert ticket.stole  # at least one victim
    assert f.stats["steals"] >= 1
    assert len(f) == 24


def test_delete_on_empty_fleet_returns_empty():
    f = fleet()
    got = f.delete_min(4)
    assert got.size == 0
    assert len(f) == 0


def test_delete_count_validation():
    f = fleet(k=8)
    with pytest.raises(ValueError):
        f.delete_min(0)
    with pytest.raises(ValueError):
        f.delete_min(9)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        fleet(backend="cuda")


def test_single_shard_is_exact():
    f = fleet(n=1)
    keys = np.random.default_rng(1).integers(0, 500, 64, dtype=np.int64)
    f.insert(keys)
    first = f.delete_min(16)
    assert np.array_equal(first, np.sort(keys)[:16])


def test_router_size_accounting_tracks_shards():
    f = fleet()
    f.insert(np.arange(50, dtype=np.int64))
    assert len(f) == sum(f.shard_sizes()) == 50
    f.delete_min(10)
    assert len(f) == sum(f.shard_sizes()) == 40


def test_clocks_advance_only_on_touched_shards():
    f = fleet(n=4, policy="spray")
    before = list(f.clocks)
    assert before == [0.0] * 4
    tickets = f.insert(np.arange(16, dtype=np.int64))
    touched = {t.shard for t in tickets}
    for i, c in enumerate(f.clocks):
        assert (c > 0) == (i in touched)
    assert f.makespan_ns == max(f.clocks)


def test_peek_sees_global_min_per_shard():
    f = fleet(n=2, policy="hash")
    f.insert(np.arange(100, dtype=np.int64))
    mins = [s.peek() for s in f.shards]
    assert min(m for m in mins if m is not None) == 0
    empty = fleet(n=2)
    assert all(s.peek() is None for s in empty.shards)


def test_imbalance_gauge():
    f = fleet(n=4, policy="spray", seed=0)
    assert f.imbalance() == 1.0  # empty fleet reads balanced
    f.exec_insert(0, np.arange(30, dtype=np.int64))
    assert f.imbalance() == pytest.approx(4.0)  # all keys on one shard


def test_obs_events_emitted():
    bus = EventBus()
    f = fleet(n=2, policy="hash", obs=bus)
    f.insert(np.arange(64, dtype=np.int64))
    f.delete_min(16)
    types = [e.etype for e in bus]
    assert SHARD_OP_BEGIN in types and SHARD_OP_END in types
    assert SHARD_PROBE in types
    probe = next(e for e in bus if e.etype == SHARD_PROBE)
    assert probe.get("primary") in (0, 1)
    begin = next(e for e in bus if e.etype == SHARD_OP_BEGIN)
    assert begin.thread.startswith("shard")


def test_obs_steal_event():
    bus = EventBus()
    f = fleet(n=4, k=16, policy="hash", obs=bus)
    f.insert(np.arange(40, dtype=np.int64))
    f.delete_min(16)
    steals = [e for e in bus if e.etype == SHARD_STEAL]
    assert steals
    assert all(e.get("got", 0) > 0 for e in steals)


def test_check_invariants_prefixes_shard_index():
    f = fleet(n=2)
    f.insert(np.arange(64, dtype=np.int64))
    assert f.check_invariants() == []
    # corrupt one shard's arena ordering to prove problems are attributed
    shard = next(s for s in f.shards if len(s) > 0)
    arena = shard.pq._arena
    row = 1 if arena.counts[1] >= 2 else 0
    arena.keys[row, 0], arena.keys[row, 1] = (
        arena.keys[row, 1].item() + 1,
        arena.keys[row, 0].item(),
    )
    problems = f.check_invariants()
    assert problems
    assert all(p.startswith("shard ") for p in problems)


@pytest.mark.parametrize("backend", ["native", "sim"])
def test_backends_agree_on_drained_multiset(backend):
    f = fleet(n=3, k=8, backend=backend, policy="hash")
    keys = np.random.default_rng(2).integers(-100, 100, 70, dtype=np.int64)
    f.insert(keys)
    out = []
    while f:
        out.append(f.delete_min(8))
    assert np.array_equal(np.sort(np.concatenate(out)), np.sort(keys))


def test_sim_backend_charges_time():
    f = fleet(n=2, backend="sim", policy="hash")
    f.insert(np.arange(64, dtype=np.int64))
    assert f.makespan_ns > 0
    f.delete_min(8)
    assert f.makespan_ns > 0
