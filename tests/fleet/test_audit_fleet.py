"""HeapAuditor.audit_fleet: per-shard checks + router accounting."""

import numpy as np

from repro.core import HeapAuditor
from repro.fleet import ShardedBGPQ


def loaded_fleet(n=3, k=8, **kw):
    kw.setdefault("policy", "hash")
    kw.setdefault("seed", 2)
    fleet = ShardedBGPQ(n_shards=n, node_capacity=k, **kw)
    keys = np.random.default_rng(0).integers(0, 500, 100, dtype=np.int64)
    fleet.insert(keys)
    return fleet, keys


def test_clean_fleet_passes_and_runs_shard_checks():
    fleet, keys = loaded_fleet()
    report = HeapAuditor(fleet).audit()
    assert report.ok, report.problems
    assert "router-accounting" in report.checks_run
    assert "length" in report.checks_run
    # every shard got the full per-heap pass
    for i in range(3):
        assert any(c.startswith(f"shard{i}:structure") for c in report.checks_run)
        assert any(c.startswith(f"shard{i}:arena") for c in report.checks_run)


def test_audit_auto_delegates_for_fleets():
    fleet, _ = loaded_fleet()
    via_audit = HeapAuditor(fleet).audit()
    via_fleet = HeapAuditor(fleet).audit_fleet()
    assert via_audit.checks_run == via_fleet.checks_run


def test_conservation_fleet_global():
    fleet, keys = loaded_fleet()
    out = fleet.delete_min(8)
    report = HeapAuditor(fleet).audit(inserted=[keys], removed=[out])
    assert report.ok, report.problems
    assert "conservation" in report.checks_run


def test_conservation_catches_lost_key():
    fleet, keys = loaded_fleet()
    out = fleet.delete_min(8)
    report = HeapAuditor(fleet).audit(
        inserted=[keys, np.array([12345])], removed=[out]
    )
    assert not report.ok
    assert any("drift" in p or "mismatch" in p for p in report.problems)


def test_router_accounting_drift_detected():
    fleet, _ = loaded_fleet()
    fleet._size += 1  # simulate a routed-execution bookkeeping bug
    report = HeapAuditor(fleet).audit()
    assert not report.ok
    assert any("router size accounting drift" in p for p in report.problems)
    # the length check cross-fires too: len(fleet) vs snapshot
    assert any("snapshot" in p for p in report.problems)


def test_shard_problem_is_prefixed_with_index():
    fleet, _ = loaded_fleet()
    victim = next(i for i, s in enumerate(fleet.shards) if len(s))
    arena = fleet.shards[victim].pq._arena
    # corrupt a retired row beyond the shard's heap: stale keys there
    # resurface when the heap grows back
    arena.counts[arena.rows - 1] = 3
    report = HeapAuditor(fleet).audit()
    assert not report.ok
    assert any(p.startswith(f"shard {victim}:") for p in report.problems)


def test_sim_backend_fleet_audits_clean():
    fleet, _ = loaded_fleet(backend="sim")
    fleet.delete_min(5)
    report = HeapAuditor(fleet).audit()
    assert report.ok, report.problems
    assert any("lock-quiescence" in c for c in report.checks_run)
