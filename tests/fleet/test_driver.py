"""The async session driver: scheduling, history, and observability."""

import numpy as np

from repro.core import HeapAuditor, check_k_relaxed
from repro.fleet import ShardedBGPQ, mixed_scripts, run_fleet
from repro.obs.events import (
    LOCK_CONTEND,
    LOCK_GRANT,
    OP_BEGIN,
    OP_END,
    SHARD_IMBALANCE,
    THREAD_FINISH,
    THREAD_START,
    EventBus,
)


def drive(n_shards=4, sessions=6, requests=8, k=16, obs=None, **kw):
    kw.setdefault("policy", "hash")
    kw.setdefault("seed", 9)
    fleet = ShardedBGPQ(n_shards=n_shards, node_capacity=k, obs=obs, **kw)
    scripts = mixed_scripts(sessions, requests, k, seed=4)
    return fleet, run_fleet(fleet, scripts)


def test_mixed_scripts_shape_and_determinism():
    a = mixed_scripts(3, 4, 8, seed=2)
    b = mixed_scripts(3, 4, 8, seed=2)
    assert len(a) == 3 and all(len(s) == 4 for s in a)
    assert a[0][0][0] == "insert" and a[0][1][0] == "deletemin"
    for sa, sb in zip(a, b):
        for (ka, va), (kb, vb) in zip(sa, sb):
            assert ka == kb
            if ka == "insert":
                assert np.array_equal(va, vb)


def test_history_is_execution_ordered_and_conserves_keys():
    fleet, res = drive()
    starts = [r.start for r in res.history]
    assert starts == sorted(starts)  # service order == linearization order
    assert res.keys_in - res.keys_out == len(fleet)
    assert res.requests == 6 * 8
    report = check_k_relaxed(res.history)
    assert not report.problems


def test_driver_fleet_passes_full_audit():
    fleet, res = drive()
    inserted = [np.asarray(r.args) for r in res.history if r.kind == "insert"]
    removed = [np.asarray(r.result) for r in res.history if r.kind == "deletemin"]
    report = HeapAuditor(fleet).audit(inserted=inserted, removed=removed)
    assert report.ok, report.problems
    assert "router-accounting" in report.checks_run


def test_makespan_shrinks_with_shards():
    makespans = {}
    for n in (1, 4):
        _, res = drive(n_shards=n, policy="spray")
        makespans[n] = res.makespan_ns
    assert makespans[4] < makespans[1]


def test_single_shard_history_is_exact():
    _, res = drive(n_shards=1)
    report = check_k_relaxed(res.history)
    assert report.ok and report.minimal_k == 1


def test_record_timestamps_are_causally_ordered():
    _, res = drive()
    for r in res.history:
        assert r.invoke <= r.start <= r.respond


def test_empty_scripts_no_ops():
    fleet = ShardedBGPQ(n_shards=2, node_capacity=8)
    res = run_fleet(fleet, [[], []])
    assert res.history == [] and res.makespan_ns == 0.0


def test_think_time_delays_dispatch():
    fleet = ShardedBGPQ(n_shards=1, node_capacity=8, seed=0)
    scripts = mixed_scripts(1, 4, 8, seed=0)
    res = run_fleet(fleet, scripts, think_ns=1e6)
    # each of the 3 follow-up requests arrives a full think time after
    # its predecessor finished
    assert res.makespan_ns > 3e6


def test_obs_session_spans_and_queueing():
    bus = EventBus()
    fleet, res = drive(n_shards=2, sessions=8, obs=bus)
    types = [e.etype for e in bus]
    assert types.count(THREAD_START) == 8
    assert types.count(THREAD_FINISH) == 8
    assert types.count(OP_BEGIN) == types.count(OP_END) == res.requests
    # 8 closed-loop sessions on 2 shards must queue somewhere
    contends = [e for e in bus if e.etype == LOCK_CONTEND]
    grants = [e for e in bus if e.etype == LOCK_GRANT]
    assert contends and len(contends) == len(grants)
    assert all(e.get("lock", "").startswith("fleet.s") for e in contends)
    assert all(e.get("lock", "").endswith(".n1") for e in grants)
    assert all(e.get("waited", 0) > 0 for e in grants)


def test_obs_imbalance_gauge_periodic():
    bus = EventBus()
    fleet = ShardedBGPQ(n_shards=2, node_capacity=16, obs=bus, seed=1)
    run_fleet(fleet, mixed_scripts(8, 10, 16, seed=3), imbalance_every=10)
    gauges = [e for e in bus if e.etype == SHARD_IMBALANCE]
    assert gauges
    for g in gauges:
        assert g.get("gauge") >= 1.0
        assert len(g.get("sizes")) == 2


def test_trace_analyze_attributes_fleet_waits():
    """The existing analysis layer reads fleet lock events unchanged."""
    from repro.obs.analysis import wait_for_graph

    bus = EventBus()
    drive(n_shards=2, sessions=8, obs=bus)
    graph = wait_for_graph(bus.events)
    # some client waited on a shard root serviced for another client
    fleet_edges = [e for e in graph["edges"]
                   if e["resource"].startswith("fleet.s")]
    assert fleet_edges
    assert all(e["wait_ns"] > 0 and e["blocker"] != "?" for e in fleet_edges)
