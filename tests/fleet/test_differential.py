"""Property tests: the fleet against exact and relaxed oracles.

Two contracts, each over every (policy, shard-count, backend) cell:

* **multiset exactness** — relaxation reorders deletes but never loses
  or invents keys: fully draining the fleet yields exactly the
  inserted multiset;
* **self-consistent relaxation bound** — the driver's measured history
  passes the k-relaxed spec at the checker's own reported
  ``minimal_k`` and fails one below it, i.e. the reported bound is
  tight, so any externally supplied budget >= minimal_k is honest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import check_k_relaxed
from repro.core.linearizability import LinearizabilityError, assert_k_relaxed
from repro.fleet import ShardedBGPQ, mixed_scripts, run_fleet

CELLS = [
    (policy, n, backend)
    for policy in ("hash", "spray", "shortest", "d-choice")
    for n in (1, 2, 4)
    for backend in ("native", "sim")
]

keys_strategy = st.lists(
    st.integers(min_value=-(1 << 40), max_value=1 << 40), min_size=1, max_size=120
)


@pytest.mark.parametrize("policy,n_shards,backend", CELLS)
@given(keys=keys_strategy, seed=st.integers(min_value=0, max_value=7))
@settings(max_examples=12, deadline=None)
def test_fleet_drains_exact_multiset(policy, n_shards, backend, keys, seed):
    fleet = ShardedBGPQ(
        n_shards=n_shards, node_capacity=8, backend=backend,
        policy=policy, seed=seed,
    )
    arr = np.array(keys, dtype=np.int64)
    fleet.insert(arr)
    assert len(fleet) == arr.size
    out = []
    while fleet:
        out.append(fleet.delete_min(min(8, max(1, len(fleet)))))
    drained = np.sort(np.concatenate(out))
    assert np.array_equal(drained, np.sort(arr))
    assert fleet.check_invariants() == []


@pytest.mark.parametrize("policy,n_shards,backend", CELLS)
def test_measured_rank_never_exceeds_reported_bound(policy, n_shards, backend):
    fleet = ShardedBGPQ(
        n_shards=n_shards, node_capacity=8, backend=backend,
        policy=policy, seed=11,
    )
    res = run_fleet(fleet, mixed_scripts(5, 6, 8, seed=2))
    measured = check_k_relaxed(res.history)
    assert not measured.problems
    # the reported minimal_k is a genuine bound: spec passes there...
    report = assert_k_relaxed(res.history, k=measured.minimal_k)
    assert report.ok and report.max_rank == measured.max_rank
    # ...and is tight: one below it must violate (when relaxation occurred)
    if measured.minimal_k > 1:
        with pytest.raises(LinearizabilityError):
            assert_k_relaxed(res.history, k=measured.minimal_k - 1)
    else:
        assert n_shards == 1 or measured.max_rank == 0
