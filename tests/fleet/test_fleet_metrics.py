"""Fleet-path metrics: schedule neutrality, gauge lifecycle, and
smoothed elasticity."""

from repro.fleet import ShardedBGPQ, mixed_scripts, run_fleet
from repro.fleet.elastic import ElasticController
from repro.obs.metrics import MetricsRegistry, validate_prometheus_text


def _run(metrics, *, n_shards=3, elastic=None):
    fleet = ShardedBGPQ(n_shards=n_shards, node_capacity=16, policy="spray",
                        seed=11, metrics=metrics)
    scripts = mixed_scripts(5, 8, 16, seed=11)
    res = run_fleet(fleet, scripts, imbalance_every=8, elastic=elastic)
    return fleet, res


def test_metrics_do_not_move_the_fleet():
    _, bare = _run(None)
    reg = MetricsRegistry()
    fleet, wired = _run(reg)
    assert wired.history == bare.history
    assert wired.makespan_ns == bare.makespan_ns
    assert wired.shard_sizes == bare.shard_sizes
    assert wired.stats == bare.stats
    # and the wired run really emitted
    assert "repro_fleet_op_latency_ns" in reg.names()
    assert "repro_shard_occupancy" in reg.names()
    assert validate_prometheus_text(reg.to_prometheus()) == []


def test_metrics_neutral_under_elastic_resharding():
    def elastic():
        return ElasticController(min_shards=1, max_shards=6,
                                 grow_above=24, shrink_below=2, cooldown=1)

    _, bare = _run(None, elastic=elastic())
    reg = MetricsRegistry()
    _, wired = _run(reg, elastic=elastic())
    assert wired.history == bare.history
    assert wired.makespan_ns == bare.makespan_ns
    assert wired.shard_sizes == bare.shard_sizes


def test_shrink_retires_ghost_shard_gauges():
    reg = MetricsRegistry()
    fleet = ShardedBGPQ(n_shards=4, node_capacity=8, seed=1, metrics=reg)
    fleet.observe_gauges(at=0.0)
    occ = reg.snapshot()["repro_shard_occupancy"]["series"]
    assert [s["labels"]["shard"] for s in occ] == ["0", "1", "2", "3"]
    fleet.shrink(at=1.0)
    fleet.shrink(at=2.0)
    fleet.observe_gauges(at=3.0)
    snap = reg.snapshot()
    occ = snap["repro_shard_occupancy"]["series"]
    assert [s["labels"]["shard"] for s in occ] == ["0", "1"]
    assert snap["repro_fleet_width"]["series"][0]["value"] == 2


def test_probe_hit_ratio_and_reshard_counters():
    reg = MetricsRegistry()
    fleet, res = _run(reg)
    fleet.observe_gauges(at=res.makespan_ns)
    snap = reg.snapshot()
    ratio = snap["repro_fleet_probe_hit_ratio"]["series"][0]["value"]
    assert 0.0 <= ratio <= 1.0
    fleet.grow(1, at=res.makespan_ns)
    snap = reg.snapshot()
    grows = {
        s["labels"]["action"]: s["value"]
        for s in snap["repro_fleet_reshard_total"]["series"]
    }
    assert grows.get("grow") == 1


def test_smoothing_stops_elastic_flapping():
    """Occupancy oscillating across the grow mark: the raw controller
    grows on every burst and shrinks right back; the smoothed one sees
    the average level and holds a stable width."""
    import numpy as np

    def run(smoothing):
        fleet = ShardedBGPQ(n_shards=2, node_capacity=8, seed=2)
        ctl = ElasticController(min_shards=1, max_shards=8,
                                grow_above=40, shrink_below=3, cooldown=0,
                                smoothing_half_life_ns=smoothing)
        burst = np.arange(120, dtype=np.int64)
        for step in range(10):
            now = float(step * 1_000)
            if step % 2 == 0:
                fleet.insert(burst)  # ~60/shard: above the mark
            else:
                while len(fleet) > 4:  # drain to ~2/shard: below it
                    if not len(fleet.delete_min(8)):
                        break
            ctl.maybe_act(fleet, now=now)
        return [t.action for t in ctl.actions]

    raw = run(None)
    smooth = run(2_000.0)
    assert raw != smooth  # smoothing changed real resize decisions
    structural = lambda acts: [a for a in acts  # noqa: E731
                               if a in ("grow", "shrink")]
    assert len(structural(smooth)) < len(structural(raw))


def test_op_latency_counts_match_executed(tmp_path):
    reg = MetricsRegistry()
    _, res = _run(reg)
    snap = reg.snapshot()
    observed = sum(
        s["count"] for s in snap["repro_fleet_op_latency_ns"]["series"]
    )
    assert observed == len(res.history)
