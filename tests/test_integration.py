"""Cross-module integration tests.

These exercise whole pipelines: applications driving the concurrent
BGPQ through the generic ConcurrentPQ interface, differential runs of
all three BGPQ realisations (DES / native / oracle), and end-to-end
benchmark-driver flows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.astar import astar_concurrent, astar_sequential, generate_grid
from repro.apps.knapsack import generate, solve_concurrent, solve_dp
from repro.core import BGPQ, SequentialPQ
from repro.core.native import NativeBGPQ
from repro.device import GpuContext, launch
from repro.sim import Engine


def small_bgpq(k=16, **kw):
    ctx = GpuContext.default(blocks=4, threads_per_block=64)
    return BGPQ(ctx, node_capacity=k, max_keys=1 << 14, **kw)


class TestAppsOnConcurrentBGPQ:
    """The paper's applications run on BGPQ itself via the same
    interface the CPU comparators use — BGPQ is a drop-in queue."""

    def test_knapsack_on_bgpq(self):
        inst = generate(16, family="strongly_correlated", R=40, seed=2)
        pq = small_bgpq(k=8)
        res = solve_concurrent(inst, pq, n_threads=4, seed=0)
        assert res.best_profit == solve_dp(inst)

    def test_astar_on_bgpq(self):
        grid = generate_grid(20, 0.15, seed=1)
        opt = astar_sequential(grid, "chebyshev").cost
        pq = small_bgpq(k=8)
        res = astar_concurrent(grid, pq, heuristic="chebyshev", n_threads=4, seed=0)
        assert res.cost == opt


class TestThreeWayDifferential:
    """DES BGPQ, NativeBGPQ and the heapq oracle agree on every
    sequential script — one spec, three implementations."""

    @given(
        st.lists(
            st.one_of(
                st.lists(st.integers(0, 2**20), min_size=1, max_size=8).map(
                    lambda ks: ("insert", ks)
                ),
                st.integers(1, 8).map(lambda c: ("deletemin", c)),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_agreement(self, script):
        des = small_bgpq(k=8)
        native = NativeBGPQ(node_capacity=8)
        oracle = SequentialPQ()

        des_results = []

        def t():
            for kind, arg in script:
                if kind == "insert":
                    yield from des.insert_op(np.asarray(arg))
                else:
                    got = yield from des.deletemin_op(arg)
                    des_results.append(got)

        eng = Engine(seed=0)
        eng.spawn(t())
        eng.run()

        it = iter(des_results)
        for kind, arg in script:
            if kind == "insert":
                native.insert(arg)
                oracle.insert(arg)
            else:
                expect = oracle.deletemin(arg)
                nat, _ = native.deletemin(arg)
                got = next(it)
                assert np.array_equal(got, expect)
                assert np.array_equal(nat, expect)
        assert np.array_equal(np.sort(des.snapshot_keys()), oracle.snapshot_keys())
        assert np.array_equal(np.sort(native.snapshot_keys()), oracle.snapshot_keys())


class TestPeekMin:
    def test_peek_returns_minimum_without_removing(self):
        pq = small_bgpq(k=8)
        eng = Engine()
        out = []

        def t():
            yield from pq.insert_op(np.array([5, 2, 9]))
            got = yield from pq.peek_min_op(2)
            out.append(got)
            got2 = yield from pq.peek_min_op(2)
            out.append(got2)

        eng.spawn(t())
        eng.run()
        assert list(out[0]) == [2, 5]
        assert list(out[1]) == [2, 5]  # not removed
        assert len(pq) == 3

    def test_peek_empty(self):
        pq = small_bgpq(k=8)
        eng = Engine()
        out = []

        def t():
            got = yield from pq.peek_min_op(1)
            out.append(got)

        eng.spawn(t())
        eng.run()
        assert out[0].size == 0

    def test_peek_validation(self):
        pq = small_bgpq(k=8)
        with pytest.raises(ValueError):
            list(pq.peek_min_op(0))


class TestKernelLaunch:
    def test_launch_spawns_one_thread_per_block(self):
        ctx = GpuContext.default(blocks=6, threads_per_block=64)
        eng = Engine()
        hits = []

        def block(bid):
            from repro.sim import Compute

            yield Compute(1.0)
            hits.append(bid)

        handles = launch(eng, ctx, block, name="b")
        assert len(handles) == 6
        eng.run()
        assert sorted(hits) == list(range(6))
        assert handles[0].name == "b0"


class TestSchedulerSeedSweep:
    """Wider interleaving exploration than the unit suite: conservation
    plus invariants across 20 schedules with all features on."""

    @pytest.mark.parametrize("seed", range(20))
    def test_mixed_workload_seed(self, seed):
        pq = small_bgpq(k=8)
        eng = Engine(seed=seed)
        inserted, deleted = [], []

        def worker(i):
            r = np.random.default_rng(seed * 31 + i)
            for _ in range(15):
                if r.random() < 0.5:
                    b = r.integers(0, 1 << 20, size=int(r.integers(1, 9)))
                    inserted.append(b.copy())
                    yield from pq.insert_op(b)
                else:
                    got = yield from pq.deletemin_op(int(r.integers(1, 9)))
                    if got.size:
                        deleted.append(got)

        for i in range(5):
            eng.spawn(worker(i))
        eng.run()
        ins = np.sort(np.concatenate(inserted)) if inserted else np.empty(0)
        outs = [np.concatenate(deleted)] if deleted else []
        rest = pq.snapshot_keys()
        assert np.array_equal(ins, np.sort(np.concatenate([*outs, rest])))
        assert pq.check_invariants() == []
