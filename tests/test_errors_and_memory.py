"""Error-type contracts and memory-footprint accounting tests."""

import numpy as np
import pytest

from repro import errors
from repro.baselines import CBPQ, HuntHeapPQ, LJSkipListPQ, SprayListPQ, TbbHeapPQ
from repro.baselines.skiplist import SkipList
from repro.core import BGPQ
from repro.core.native import NativeBGPQ
from repro.sim import Engine


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.SimulationError, errors.ReproError)
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.LockProtocolError, errors.SimulationError)
        assert issubclass(errors.SimThreadError, errors.SimulationError)
        assert issubclass(errors.CapacityError, errors.ReproError)
        assert issubclass(errors.EmptyError, errors.ReproError)
        assert issubclass(errors.ConfigurationError, errors.ReproError)
        assert issubclass(errors.LinearizabilityError, errors.ReproError)

    def test_deadlock_message_names_threads(self):
        err = errors.DeadlockError({"t1": "lock:a", "t2": "lock:b"})
        assert "t1 waiting on lock:a" in str(err)
        assert err.blocked == {"t1": "lock:a", "t2": "lock:b"}

    def test_simthread_error_wraps(self):
        inner = ValueError("boom")
        err = errors.SimThreadError("worker", inner)
        assert err.original is inner
        assert "worker" in str(err)

    def test_linearizability_error_carries_history(self):
        err = errors.LinearizabilityError("bad", history=[1, 2])
        assert err.history == [1, 2]


def _fill(pq, keys, batch=64):
    eng = Engine()

    def f():
        for i in range(0, keys.size, batch):
            yield from pq.insert_op(keys[i : i + batch])

    eng.spawn(f())
    eng.run()


class TestMemoryAccounting:
    def test_bgpq_k_plus_o1(self):
        pq = BGPQ(node_capacity=64, max_keys=1 << 14)
        keys = np.random.default_rng(0).integers(0, 10**6, 64 * 16)
        _fill(pq, keys)
        per_key = pq.memory_bytes() / len(pq)
        assert 8 <= per_key < 16  # 8-byte keys + small control overhead

    def test_skiplist_counts_track_inserts_and_unlinks(self):
        sl = SkipList(seed=1)
        for k in range(100):
            sl.insert(k)
        assert sl.allocated_nodes == 100
        assert sl.allocated_pointers >= 100  # every node has >= 1 level
        before = sl.memory_bytes()
        for _ in range(40):
            sl.logical_delete_min()
        # tombstones still occupy memory
        assert sl.memory_bytes() == before
        sl.physical_cleanup()
        assert sl.allocated_nodes == 60
        assert sl.memory_bytes() < before

    def test_skiplist_sweep_updates_counts(self):
        sl = SkipList(seed=2)
        for k in range(50):
            sl.insert(k)
        node = sl.head.forward[0]
        while node is not None:
            if node.key % 2 == 0:
                sl.mark(node)
            node = node.forward[0]
        sl.sweep_deleted()
        assert sl.allocated_nodes == 25

    def test_skiplist_overhead_exceeds_flat_heap(self):
        keys = np.random.default_rng(1).integers(0, 10**6, 2000)
        ljsl = LJSkipListPQ()
        tbb = TbbHeapPQ()
        _fill(ljsl, keys)
        _fill(tbb, keys)
        assert ljsl.memory_bytes() > 1.5 * tbb.memory_bytes()

    def test_all_queues_report_memory(self):
        keys = np.arange(256)
        for pq in (BGPQ(node_capacity=32, max_keys=1 << 12), TbbHeapPQ(),
                   HuntHeapPQ(), CBPQ(chunk_capacity=64),
                   LJSkipListPQ(), SprayListPQ(n_threads=4)):
            _fill(pq, keys, batch=32)
            assert pq.memory_bytes() > 0

    def test_native_memory(self):
        pq = NativeBGPQ(node_capacity=32, payload_width=2)
        pq.insert(np.arange(32), payload=np.zeros((32, 2), np.int64))
        assert pq.memory_bytes() > 32 * 8
