"""Differential suite: compiled kernels are bit-identical to the reference.

The dispatch contract (`repro.primitives.kernels`) is that switching
backend can never change a result — same key values, same tie
resolution, same payload permutation, byte for byte.  These tests pin
that contract with hypothesis against every compiled backend the host
can build; on a host with none, they reduce to reference-vs-reference
and pass trivially.

Shapes deliberately cover the compiled paths' edges: empty runs,
single elements, heavy ties (including ties straddling the C core's
8-wide SIMD merge boundary), payload widths 0..3, and split points at
0 and at the full length.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import kernels
from repro.primitives.inplace import ScratchLedger

COMPILED = [n for n in kernels.available_backends() if n != "numpy"]
REF = kernels.select("numpy")

pytestmark = pytest.mark.skipif(
    not COMPILED, reason="no compiled kernel backend on this host"
)

# small alphabet forces ties; widths to and past the 8-element SIMD lane
sorted_runs = st.lists(
    st.integers(min_value=-4, max_value=4), min_size=0, max_size=40
).map(sorted)
widths = st.sampled_from([0, 1, 3])


def _records(rng_draw, keys, w):
    pay = np.arange(len(keys) * max(w, 1), dtype=np.int64)
    pay = pay.reshape(len(keys), max(w, 1))[:, :w].copy()
    return np.array(keys, dtype=np.int64), pay


@pytest.fixture(params=COMPILED)
def compiled(request):
    return kernels.select(request.param)


@given(a=sorted_runs, b=sorted_runs, w=widths)
@settings(max_examples=120, deadline=None)
def test_merge_into_parity(a, b, w):
    ka, pa = _records(None, a, w)
    kb, pb = _records(None, b, w)
    pb = pb + 1000  # distinct payloads expose any tie-order deviation
    for name in COMPILED:
        kern = kernels.select(name)
        ref_k = np.empty(len(a) + len(b), dtype=np.int64)
        got_k = np.empty_like(ref_k)
        if w:
            ref_p = np.empty((len(ref_k), w), dtype=np.int64)
            got_p = np.empty_like(ref_p)
            REF.merge_into(ka, kb, ref_k, pa, pb, ref_p)
            kern.merge_into(ka, kb, got_k, pa, pb, got_p)
            assert np.array_equal(ref_p, got_p), name
        else:
            REF.merge_into(ka, kb, ref_k)
            kern.merge_into(ka, kb, got_k)
        assert np.array_equal(ref_k, got_k), name


@given(
    a=sorted_runs,
    b=sorted_runs,
    w=widths,
    cut=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=120, deadline=None)
def test_sort_split_into_parity(a, b, w, cut):
    total = len(a) + len(b)
    ma = round(cut * total)
    ka, pa = _records(None, a, w)
    kb, pb = _records(None, b, w)
    pb = pb + 1000
    k = max(total, 1)
    for name in COMPILED:
        kern = kernels.select(name)
        outs = {}
        for tag, impl in (("ref", REF), ("got", kern)):
            scratch = ScratchLedger(k, payload_width=w)
            x_k = np.empty(ma, dtype=np.int64)
            y_k = np.empty(total - ma, dtype=np.int64)
            if w:
                x_p = np.empty((ma, w), dtype=np.int64)
                y_p = np.empty((total - ma, w), dtype=np.int64)
                impl.sort_split_into(
                    ka, kb, ma, x_k, y_k, scratch, pa, pb, x_p, y_p
                )
                outs[tag] = (x_k.copy(), y_k.copy(), x_p.copy(), y_p.copy())
            else:
                impl.sort_split_into(ka, kb, ma, x_k, y_k, scratch)
                outs[tag] = (x_k.copy(), y_k.copy())
        for r, g in zip(outs["ref"], outs["got"]):
            assert np.array_equal(r, g), name


@given(
    keys=st.lists(st.integers(min_value=-6, max_value=6), max_size=64),
    w=widths,
)
@settings(max_examples=100, deadline=None)
def test_sort_records_parity(keys, w):
    ka, pa = _records(None, keys, w)
    ref_k, ref_p = REF.sort_records(ka.copy(), pa.copy())
    for name in COMPILED:
        got_k, got_p = kernels.select(name).sort_records(ka.copy(), pa.copy())
        assert np.array_equal(ref_k, got_k), name
        assert np.array_equal(ref_p, got_p), name


@given(keys=st.lists(st.integers(min_value=-6, max_value=6), max_size=64))
@settings(max_examples=100, deadline=None)
def test_bitonic_sort_parity(keys):
    ka = np.array(keys, dtype=np.int64)
    pa = np.arange(len(ka), dtype=np.int64)
    ref = REF.bitonic_sort(ka.copy(), pa.copy())
    ref_k = REF.bitonic_sort(ka.copy())
    for name in COMPILED:
        kern = kernels.select(name)
        got = kern.bitonic_sort(ka.copy(), pa.copy())
        assert np.array_equal(ref[0], got[0]), name
        assert np.array_equal(ref[1], got[1]), name
        assert np.array_equal(ref_k, kern.bitonic_sort(ka.copy())), name


@given(vals=st.lists(st.integers(min_value=-100, max_value=100), max_size=64))
@settings(max_examples=100, deadline=None)
def test_exclusive_scan_parity(vals):
    arr = np.array(vals, dtype=np.int64)
    ref = REF.exclusive_scan(arr)
    for name in COMPILED:
        assert np.array_equal(ref, kernels.select(name).exclusive_scan(arr)), name


@given(
    vals=st.lists(st.integers(min_value=-100, max_value=100), max_size=64),
    bits=st.integers(min_value=0, max_value=(1 << 63) - 1),
)
@settings(max_examples=100, deadline=None)
def test_compact_parity(vals, bits):
    arr = np.array(vals, dtype=np.int64)
    keep = np.array([(bits >> i) & 1 == 1 for i in range(len(vals))], dtype=bool)
    two_d = np.stack([arr, arr + 1], axis=1) if len(vals) else arr.reshape(0, 1)
    for name in COMPILED:
        kern = kernels.select(name)
        assert np.array_equal(REF.compact(arr, keep), kern.compact(arr, keep)), name
        assert np.array_equal(
            REF.compact(two_d, keep), kern.compact(two_d, keep)
        ), name


def test_simd_boundary_tie_storm():
    """Ties straddling every 8-element lane boundary of the AVX merge."""
    rng = np.random.default_rng(7)
    for trial in range(50):
        na, nb = rng.integers(8, 64, size=2)
        a = np.sort(rng.integers(0, 4, size=na).astype(np.int64))
        b = np.sort(rng.integers(0, 4, size=nb).astype(np.int64))
        ref = np.empty(na + nb, dtype=np.int64)
        REF.merge_into(a, b, ref)
        for name in COMPILED:
            got = np.empty_like(ref)
            kernels.select(name).merge_into(a, b, got)
            assert np.array_equal(ref, got), name


def test_noncontiguous_input_falls_back_identically(compiled):
    a = np.arange(0, 20, 2, dtype=np.int64)[::2]  # non-contiguous view
    b = np.arange(1, 11, 2, dtype=np.int64)
    assert not a.flags.c_contiguous
    ref = np.empty(len(a) + len(b), dtype=np.int64)
    got = np.empty_like(ref)
    REF.merge_into(a, b, ref)
    compiled.merge_into(a, b, got)
    assert np.array_equal(ref, got)
