"""Bitonic network tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import bitonic_sort, bitonic_stage_count, is_power_of_two, next_power_of_two


def test_sorts_small_example():
    out = bitonic_sort(np.array([5, 1, 4, 2, 8, 0, 3, 9]))
    assert list(out) == [0, 1, 2, 3, 4, 5, 8, 9]


def test_non_power_of_two_length():
    out = bitonic_sort(np.array([3, 1, 2], dtype=np.int64))
    assert list(out) == [1, 2, 3]


def test_empty_and_single():
    assert bitonic_sort(np.array([], dtype=np.int32)).size == 0
    assert list(bitonic_sort(np.array([7]))) == [7]


def test_duplicates():
    out = bitonic_sort(np.array([2, 2, 1, 1, 3, 3, 2, 1]))
    assert list(out) == [1, 1, 1, 2, 2, 2, 3, 3]


def test_floats():
    out = bitonic_sort(np.array([0.5, -1.5, 2.25, 0.0]))
    assert list(out) == [-1.5, 0.0, 0.5, 2.25]


def test_already_sorted_and_reversed():
    asc = np.arange(64)
    assert np.array_equal(bitonic_sort(asc), asc)
    assert np.array_equal(bitonic_sort(asc[::-1].copy()), asc)


def test_input_not_mutated():
    a = np.array([3, 1, 2])
    bitonic_sort(a)
    assert list(a) == [3, 1, 2]


def test_payload_follows_keys():
    keys = np.array([30, 10, 20])
    payload = np.array(["c", "a", "b"])
    out_k, out_p = bitonic_sort(keys, payload)
    assert list(out_k) == [10, 20, 30]
    assert list(out_p) == ["a", "b", "c"]


def test_rejects_2d():
    with pytest.raises(ValueError):
        bitonic_sort(np.zeros((2, 2)))


def test_stage_count_formula():
    # n=1024: log=10 → 55 stages (what the cost model charges)
    assert bitonic_stage_count(1024) == 55
    assert bitonic_stage_count(2) == 1
    assert bitonic_stage_count(1) == 0
    # non-powers are padded up
    assert bitonic_stage_count(1000) == 55


def test_power_of_two_helpers():
    assert is_power_of_two(1) and is_power_of_two(64)
    assert not is_power_of_two(0) and not is_power_of_two(48)
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert next_power_of_two(1024) == 1024


@given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=300))
@settings(max_examples=60, deadline=None)
def test_matches_numpy_sort(xs):
    arr = np.array(xs, dtype=np.int64)
    assert np.array_equal(bitonic_sort(arr), np.sort(arr))


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=128))
@settings(max_examples=40, deadline=None)
def test_matches_numpy_sort_floats(xs):
    arr = np.array(xs, dtype=np.float64)
    assert np.array_equal(bitonic_sort(arr), np.sort(arr))
