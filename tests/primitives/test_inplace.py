"""Fused in-place SORT_SPLIT — equivalence with the allocating primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import (
    ScratchLedger,
    merge,
    merge_into,
    merge_with_payload,
    sort_split,
    sort_split_into,
    sort_split_payload,
)

sorted_ints = st.lists(
    st.integers(min_value=-(2**30), max_value=2**30), max_size=100
).map(sorted)


def _arr(xs):
    return np.array(xs, dtype=np.int64)


# ---------------------------------------------------------------------------
# merge_into
# ---------------------------------------------------------------------------
def test_merge_into_matches_merge():
    a, b = _arr([1, 5, 9]), _arr([2, 4, 6, 10])
    out = np.empty(7, dtype=np.int64)
    n = merge_into(a, b, out)
    assert n == 7
    np.testing.assert_array_equal(out, merge(a, b))


def test_merge_into_empty_sides():
    out = np.empty(3, dtype=np.int64)
    assert merge_into(_arr([]), _arr([1, 2, 3]), out) == 3
    np.testing.assert_array_equal(out, [1, 2, 3])
    assert merge_into(_arr([7]), _arr([]), out) == 1
    assert out[0] == 7


def test_merge_into_stability_ties_favor_a():
    """On equal keys the payload rows from ``a`` must come first —
    identical to merge_with_payload's tie rule."""
    a, pa = _arr([3, 3]), np.array([[10], [11]], dtype=np.int64)
    b, pb = _arr([3]), np.array([[20]], dtype=np.int64)
    out_k = np.empty(3, dtype=np.int64)
    out_p = np.empty((3, 1), dtype=np.int64)
    iota = np.arange(3, dtype=np.intp)
    merge_into(a, b, out_k, pa=pa, pb=pb, out_p=out_p, iota=iota)
    assert out_p[:, 0].tolist() == [10, 11, 20]


@given(sorted_ints, sorted_ints)
@settings(max_examples=60, deadline=None)
def test_merge_into_property(xs, ys):
    a, b = _arr(xs), _arr(ys)
    out = np.empty(a.size + b.size, dtype=np.int64)
    n = merge_into(a, b, out)
    assert n == a.size + b.size
    np.testing.assert_array_equal(out[:n], merge(a, b))


@given(sorted_ints, sorted_ints)
@settings(max_examples=60, deadline=None)
def test_merge_into_payload_property(xs, ys):
    a, b = _arr(xs), _arr(ys)
    pa = np.arange(a.size, dtype=np.int64).reshape(-1, 1)
    pb = (1000 + np.arange(b.size, dtype=np.int64)).reshape(-1, 1)
    total = a.size + b.size
    out_k = np.empty(total, dtype=np.int64)
    out_p = np.empty((total, 1), dtype=np.int64)
    iota = np.arange(total, dtype=np.intp)
    merge_into(a, b, out_k, pa=pa, pb=pb, out_p=out_p, iota=iota)
    rk, rp = merge_with_payload(a, pa, b, pb)
    np.testing.assert_array_equal(out_k, rk)
    np.testing.assert_array_equal(out_p, rp)


# ---------------------------------------------------------------------------
# sort_split_into
# ---------------------------------------------------------------------------
def _scratch(k, width=0):
    return ScratchLedger(k, dtype=np.int64, payload_width=width, payload_dtype=np.int64)


def test_sort_split_into_matches_sort_split():
    a, b = _arr([1, 5, 9]), _arr([2, 4, 6])
    s = _scratch(3)
    x = np.empty(3, dtype=np.int64)
    y = np.empty(3, dtype=np.int64)
    ma, mb = sort_split_into(a, b, 3, x, y, s)
    ex, ey = sort_split(a, b, ma=3)
    assert (ma, mb) == (ex.size, ey.size)
    np.testing.assert_array_equal(x[:ma], ex)
    np.testing.assert_array_equal(y[:mb], ey)


def test_sort_split_into_aliasing_destinations():
    """Destinations may alias the inputs — the heapify in-place rewrite."""
    a, b = _arr([1, 5, 9]), _arr([2, 4, 6])
    s = _scratch(3)
    ma, mb = sort_split_into(a, b, 3, a, b, s)
    np.testing.assert_array_equal(a, [1, 2, 4])
    np.testing.assert_array_equal(b, [5, 6, 9])


def test_sort_split_into_invalid_ma():
    s = _scratch(2)
    out = np.empty(2, dtype=np.int64)
    with pytest.raises(ValueError):
        sort_split_into(_arr([1]), _arr([2]), 5, out, out, s)
    with pytest.raises(ValueError):
        sort_split_into(_arr([1]), _arr([2]), -1, out, out, s)


def test_sort_split_into_scratch_too_small():
    s = _scratch(1)
    out = np.empty(4, dtype=np.int64)
    with pytest.raises(ValueError):
        sort_split_into(_arr([1, 2]), _arr([3, 4]), 2, out, out, s)


@given(sorted_ints, sorted_ints, st.data())
@settings(max_examples=60, deadline=None)
def test_sort_split_into_payload_property(xs, ys, data):
    a, b = _arr(xs), _arr(ys)
    total = a.size + b.size
    ma = data.draw(st.integers(min_value=0, max_value=total))
    pa = np.arange(a.size, dtype=np.int64).reshape(-1, 1)
    pb = (1000 + np.arange(b.size, dtype=np.int64)).reshape(-1, 1)
    k = max(total, 1)
    s = _scratch(k, width=1)
    x_k = np.empty(k, dtype=np.int64)
    y_k = np.empty(k, dtype=np.int64)
    x_p = np.empty((k, 1), dtype=np.int64)
    y_p = np.empty((k, 1), dtype=np.int64)
    got_ma, got_mb = sort_split_into(
        a, b, ma, x_k, y_k, s, pa=pa, pb=pb, x_p=x_p, y_p=y_p
    )
    ek, ep, lk, lp = sort_split_payload(a, pa, b, pb, ma=ma)
    assert (got_ma, got_mb) == (ek.size, lk.size)
    np.testing.assert_array_equal(x_k[:got_ma], ek)
    np.testing.assert_array_equal(y_k[:got_mb], lk)
    np.testing.assert_array_equal(x_p[:got_ma], ep)
    np.testing.assert_array_equal(y_p[:got_mb], lp)
