"""Kernel registry: selection, fallback, env override, instrumentation."""

import numpy as np
import pytest

from repro.device import cbuild
from repro.obs.metrics import MetricsRegistry
from repro.primitives import kernels
from repro.primitives.inplace import ScratchLedger


@pytest.fixture(autouse=True)
def _isolate_active(monkeypatch):
    """Each test starts with no process-wide backend resolved."""
    monkeypatch.setattr(kernels, "_active", None)
    monkeypatch.delenv("REPRO_KERNELS", raising=False)


def test_numpy_always_available():
    kern = kernels.select("numpy")
    assert kern.name == "numpy"
    assert not kern.releases_gil and not kern.fused


def test_select_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        kernels.select("cuda")


def test_auto_prefers_compiled_when_available():
    kern = kernels.select("auto")
    assert kern.name in kernels.available_backends()
    if "cext" in kernels.available_backends():
        assert kern.name == "cext"


def test_available_backends_starts_with_reference():
    avail = kernels.available_backends()
    assert avail[0] == "numpy"
    assert set(avail) <= {"numpy", "cext", "numba"}


def test_unavailable_backend_falls_back_to_numpy(monkeypatch):
    monkeypatch.setitem(kernels._FACTORIES, "cext", lambda: None)
    monkeypatch.setitem(kernels._FACTORIES, "numba", lambda: None)
    assert kernels.select("cext").name == "numpy"
    assert kernels.select("numba").name == "numpy"
    assert kernels.select("auto").name == "numpy"
    assert kernels.available_backends() == ["numpy"]


def test_env_var_drives_lazy_selection(monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    assert kernels.active().name == "numpy"


def test_set_active_and_use_restore():
    kernels.set_active("numpy")
    assert kernels.active().name == "numpy"
    with kernels.use("auto") as kern:
        assert kernels.active() is kern
    assert kernels.active().name == "numpy"


def test_provenance_shape():
    info = kernels.provenance(kernels.select("numpy"))
    assert info == {"backend": "numpy", "releases_gil": False, "fused": False}


def test_cext_build_failure_is_graceful(monkeypatch, tmp_path):
    cbuild.reset_for_tests()
    try:
        monkeypatch.setattr(cbuild, "_compiler", lambda: None)
        monkeypatch.setenv("REPRO_CKERN_CACHE", str(tmp_path / "cache"))
        assert cbuild.load_ckern() is None
        assert "compiler" in (cbuild.build_error() or "")
        assert kernels.select("cext").name == "numpy"
    finally:
        cbuild.reset_for_tests()


def test_instrumented_kernels_record_and_match(monkeypatch):
    registry = MetricsRegistry()
    kern = kernels.instrument(kernels.select("numpy"), registry)
    assert kern.provenance()["instrumented"] is True
    assert kern.fused is False  # forces per-kernel (unfused) dispatch

    a = np.array([1, 3, 5], dtype=np.int64)
    b = np.array([2, 4], dtype=np.int64)
    out = np.empty(5, dtype=np.int64)
    kern.merge_into(a, b, out)
    assert list(out) == [1, 2, 3, 4, 5]

    scratch = ScratchLedger(4)
    x_k = np.empty(2, dtype=np.int64)
    y_k = np.empty(3, dtype=np.int64)
    kern.sort_split_into(a, b, 2, x_k, y_k, scratch)
    assert list(x_k) == [1, 2] and list(y_k) == [3, 4, 5]

    text = registry.to_prometheus()
    assert 'kernel="merge_into"' in text
    assert 'kernel="sort_split_into"' in text
    assert 'backend="numpy"' in text


@pytest.mark.parametrize("name", ["cext", "numba"])
def test_compiled_backend_provenance_if_present(name):
    if name not in kernels.available_backends():
        pytest.skip(f"{name} not available on this host")
    kern = kernels.select(name)
    assert kern.name == name
    assert kern.releases_gil is True
