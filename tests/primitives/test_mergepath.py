"""Merge Path tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import merge, merge_path_partitions, merge_with_payload

sorted_ints = st.lists(
    st.integers(min_value=-1000, max_value=1000), max_size=200
).map(sorted)


def test_basic_merge():
    out = merge(np.array([1, 3, 5]), np.array([2, 4, 6]))
    assert list(out) == [1, 2, 3, 4, 5, 6]


def test_merge_with_empty():
    a = np.array([1, 2], dtype=np.int64)
    assert list(merge(a, np.array([], dtype=np.int64))) == [1, 2]
    assert list(merge(np.array([], dtype=np.int64), a)) == [1, 2]


def test_merge_all_equal():
    out = merge(np.array([5, 5, 5]), np.array([5, 5]))
    assert list(out) == [5, 5, 5, 5, 5]


def test_merge_disjoint_ranges():
    out = merge(np.array([10, 11]), np.array([1, 2, 3]))
    assert list(out) == [1, 2, 3, 10, 11]


@given(sorted_ints, sorted_ints)
@settings(max_examples=80, deadline=None)
def test_merge_matches_numpy(a, b):
    aa = np.array(a, dtype=np.int64)
    bb = np.array(b, dtype=np.int64)
    expect = np.sort(np.concatenate([aa, bb]))
    assert np.array_equal(merge(aa, bb), expect)


def test_payload_merge_keeps_pairs_together():
    a = np.array([1, 4])
    pa = np.array([10, 40])
    b = np.array([2, 3])
    pb = np.array([20, 30])
    keys, payload = merge_with_payload(a, pa, b, pb)
    assert list(keys) == [1, 2, 3, 4]
    assert list(payload) == [10, 20, 30, 40]


def test_payload_merge_2d_payload():
    a = np.array([1, 3])
    pa = np.array([[1, 1], [3, 3]])
    b = np.array([2])
    pb = np.array([[2, 2]])
    keys, payload = merge_with_payload(a, pa, b, pb)
    assert list(keys) == [1, 2, 3]
    assert payload.tolist() == [[1, 1], [2, 2], [3, 3]]


def test_payload_length_mismatch_raises():
    import pytest

    with pytest.raises(ValueError):
        merge_with_payload(np.array([1]), np.array([1, 2]), np.array([2]), np.array([2]))


@given(sorted_ints, sorted_ints, st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_partitions_cover_and_balance(a, b, parts):
    aa = np.array(a, dtype=np.int64)
    bb = np.array(b, dtype=np.int64)
    bounds = merge_path_partitions(aa, bb, parts)
    assert bounds[0] == (0, 0)
    assert bounds[-1] == (aa.size, bb.size)
    # boundaries are monotone and each chunk merges to a sorted run whose
    # concatenation equals the full merge
    full = []
    for (i0, j0), (i1, j1) in zip(bounds, bounds[1:]):
        assert i1 >= i0 and j1 >= j0
        chunk = merge(aa[i0:i1], bb[j0:j1])
        full.extend(chunk.tolist())
    assert full == merge(aa, bb).tolist()


def test_diagonals_memoized_and_shape_only():
    import pytest

    from repro.primitives import merge_path_diagonals

    merge_path_diagonals.cache_clear()
    d1 = merge_path_diagonals(1000, 4)
    d2 = merge_path_diagonals(1000, 4)
    assert d1 is d2  # cached tuple, not recomputed
    assert merge_path_diagonals.cache_info().hits >= 1
    assert d1[0] == 0 and d1[-1] == 1000 and len(d1) == 5
    with pytest.raises(ValueError):
        merge_path_diagonals(10, 0)
