"""SORT_SPLIT contract tests — the paper's formal specification (§4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import sort_split, sort_split_payload

sorted_ints = st.lists(
    st.integers(min_value=-(2**30), max_value=2**30), max_size=150
).map(sorted)


def test_basic_split():
    x, y = sort_split(np.array([1, 5, 9]), np.array([2, 4, 6]), ma=3)
    assert list(x) == [1, 2, 4]
    assert list(y) == [5, 6, 9]


def test_default_ma_is_len_z():
    x, y = sort_split(np.array([10, 20]), np.array([1, 2, 3]))
    assert list(x) == [1, 2]
    assert list(y) == [3, 10, 20]


def test_ma_zero_and_full():
    z, w = np.array([1, 3]), np.array([2])
    x, y = sort_split(z, w, ma=0)
    assert x.size == 0 and list(y) == [1, 2, 3]
    x, y = sort_split(z, w, ma=3)
    assert list(x) == [1, 2, 3] and y.size == 0


def test_invalid_ma_raises():
    with pytest.raises(ValueError):
        sort_split(np.array([1]), np.array([2]), ma=5)
    with pytest.raises(ValueError):
        sort_split(np.array([1]), np.array([2]), ma=-1)


def test_validate_rejects_unsorted():
    with pytest.raises(ValueError):
        sort_split(np.array([3, 1]), np.array([2]), validate=True)
    with pytest.raises(ValueError):
        sort_split(np.array([1, 2]), np.array([5, 2]), validate=True)


@given(sorted_ints, sorted_ints, st.data())
@settings(max_examples=80, deadline=None)
def test_formal_contract(z, w, data):
    """Checks every clause of the paper's SORT_SPLIT definition."""
    zz = np.array(z, dtype=np.int64)
    ww = np.array(w, dtype=np.int64)
    ma = data.draw(st.integers(min_value=0, max_value=zz.size + ww.size))
    x, y = sort_split(zz, ww, ma=ma, validate=True)
    # sizes: Ma + Mb = Na + Nb
    assert x.size == ma
    assert x.size + y.size == zz.size + ww.size
    # both outputs sorted
    assert np.all(x[:-1] <= x[1:]) if x.size > 1 else True
    assert np.all(y[:-1] <= y[1:]) if y.size > 1 else True
    # max(X) <= min(Y)
    if x.size and y.size:
        assert x[-1] <= y[0]
    # multiset preservation
    merged = np.sort(np.concatenate([zz, ww]))
    assert np.array_equal(np.sort(np.concatenate([x, y])), merged)
    # X is exactly the Ma smallest
    assert np.array_equal(x, merged[:ma])


def test_payload_split_pairs_stay_together():
    z = np.array([1, 9])
    pz = np.array([100, 900])
    w = np.array([5])
    pw = np.array([500])
    x, px, y, py = sort_split_payload(z, pz, w, pw, ma=2)
    assert list(x) == [1, 5] and list(px) == [100, 500]
    assert list(y) == [9] and list(py) == [900]


def test_payload_split_invalid_ma():
    with pytest.raises(ValueError):
        sort_split_payload(np.array([1]), np.array([1]), np.array([2]), np.array([2]), ma=9)


@given(sorted_ints, sorted_ints)
@settings(max_examples=40, deadline=None)
def test_payload_consistency(z, w):
    """key->payload mapping is preserved through the split."""
    zz = np.array(z, dtype=np.int64)
    ww = np.array(w, dtype=np.int64)
    pz = zz * 7  # payload derived from key so we can verify the pairing
    pw = ww * 7
    x, px, y, py = sort_split_payload(zz, pz, ww, pw)
    assert np.array_equal(px, x * 7)
    assert np.array_equal(py, y * 7)
