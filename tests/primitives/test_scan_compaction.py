"""Prefix-scan and stream-compaction tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.primitives import (
    compact,
    compact_payload,
    exclusive_scan,
    inclusive_scan,
    partition_flags,
    scan_stage_count,
    segmented_reduce,
)


def test_exclusive_scan_basic():
    out = exclusive_scan(np.array([3, 1, 7, 0, 4]))
    assert list(out) == [0, 3, 4, 11, 11]


def test_inclusive_scan_basic():
    out = inclusive_scan(np.array([3, 1, 7, 0, 4]))
    assert list(out) == [3, 4, 11, 11, 15]


def test_scan_empty():
    assert exclusive_scan(np.array([], dtype=np.int64)).size == 0


def test_scan_single():
    assert list(exclusive_scan(np.array([9]))) == [0]


def test_scan_stage_count():
    assert scan_stage_count(1024) == 20
    assert scan_stage_count(1) == 0


@given(st.lists(st.integers(min_value=-100, max_value=100), max_size=200))
@settings(max_examples=60, deadline=None)
def test_scan_matches_cumsum(xs):
    arr = np.array(xs, dtype=np.int64)
    expect = np.concatenate([[0], np.cumsum(arr)[:-1]]) if arr.size else arr
    assert np.array_equal(exclusive_scan(arr), expect)


def test_compact_basic():
    vals = np.array([10, 20, 30, 40])
    keep = np.array([True, False, True, False])
    assert list(compact(vals, keep)) == [10, 30]


def test_compact_none_and_all():
    vals = np.array([1, 2, 3])
    assert compact(vals, np.zeros(3, bool)).size == 0
    assert list(compact(vals, np.ones(3, bool))) == [1, 2, 3]


def test_compact_empty():
    assert compact(np.array([]), np.array([], dtype=bool)).size == 0


def test_compact_mask_mismatch():
    with pytest.raises(ValueError):
        compact(np.array([1, 2]), np.array([True]))


def test_compact_2d_payload():
    vals = np.array([1, 2, 3])
    payload = np.array([[1, 1], [2, 2], [3, 3]])
    v, p = compact_payload(vals, payload, np.array([True, False, True]))
    assert list(v) == [1, 3]
    assert p.tolist() == [[1, 1], [3, 3]]


def test_partition_flags():
    kept, dropped = partition_flags(np.arange(6), np.arange(6) % 2 == 0)
    assert list(kept) == [0, 2, 4]
    assert list(dropped) == [1, 3, 5]


@given(st.lists(st.tuples(st.integers(-50, 50), st.booleans()), max_size=150))
@settings(max_examples=50, deadline=None)
def test_compact_matches_boolean_indexing(pairs):
    vals = np.array([p[0] for p in pairs], dtype=np.int64)
    keep = np.array([p[1] for p in pairs], dtype=bool)
    assert np.array_equal(compact(vals, keep), vals[keep])


def test_segmented_reduce():
    vals = np.array([1, 2, 3, 4])
    seg = np.array([0, 1, 0, 2])
    out = segmented_reduce(vals, seg, 3)
    assert list(out) == [4, 2, 4]
