"""Admission controller: windows, budget, shed hints, accounting."""

import pytest

from repro.serve.admission import AdmissionController, RetryAfter


def test_admits_within_window_and_budget():
    adm = AdmissionController(window=2, budget=10)
    assert adm.try_admit("a") is None
    assert adm.try_admit("a") is None
    assert adm.inflight("a") == 2


def test_session_window_shed():
    adm = AdmissionController(window=2, budget=10)
    adm.try_admit("a")
    adm.try_admit("a")
    verdict = adm.try_admit("a")
    assert isinstance(verdict, RetryAfter)
    assert verdict.reason == "session-window"
    # a different session is unaffected
    assert adm.try_admit("b") is None


def test_global_budget_shed():
    adm = AdmissionController(window=10, budget=3)
    for sid in ("a", "b", "c"):
        assert adm.try_admit(sid) is None
    verdict = adm.try_admit("d")
    assert isinstance(verdict, RetryAfter)
    assert verdict.reason == "global-budget"


def test_complete_frees_both_limits():
    adm = AdmissionController(window=1, budget=1)
    assert adm.try_admit("a") is None
    assert adm.try_admit("a") is not None
    adm.complete("a")
    assert adm.try_admit("a") is None
    assert adm.inflight("a") == 1


def test_complete_unmatched_raises():
    adm = AdmissionController()
    with pytest.raises(ValueError):
        adm.complete("ghost")


def test_backoff_hint_scales_with_overload():
    adm = AdmissionController(window=100, budget=4, base_backoff_ns=1000.0)
    for i in range(4):
        adm.try_admit(f"s{i}")
    first = adm.try_admit("x")
    # deepen the overload: hint must not shrink
    assert first.backoff_hint_ns >= 1000.0


def test_stats_accounting():
    adm = AdmissionController(window=1, budget=2)
    adm.try_admit("a")
    adm.try_admit("b")
    adm.try_admit("a")  # session-window shed
    adm.try_admit("c")  # global-budget shed
    stats = adm.snapshot_stats()
    assert stats["admitted"] == 2
    assert stats["shed"] == 2
    assert stats["shed_by_reason"] == {"session-window": 1, "global-budget": 1}
    assert stats["peak_pending"] == 2
