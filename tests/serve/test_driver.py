"""End-to-end serve runs: crash campaigns, overload, both backends."""

import numpy as np
import pytest

from repro.serve import ServeConfig, run_serve, run_serve_campaign


def _cfg(tmp_path, **kw):
    base = dict(backend="native", sessions=3, ops=6, k=8, window=4,
                budget=16, checkpoint_every=4,
                data_dir=str(tmp_path / "data"), plan="none", seed=0)
    base.update(kw)
    return ServeConfig(**base)


def test_native_fault_free_run(tmp_path):
    out = run_serve(_cfg(tmp_path))
    assert out.survived, (out.failure, out.audit_problems)
    assert out.recoveries == 0
    assert out.ops_journaled == 3 * 6
    assert out.drill_ok
    assert out.digest == out.recovered_digest


def test_native_crash_campaign_recovers(tmp_path):
    outcomes = run_serve_campaign(
        _cfg(tmp_path, plan="crash"), seeds=6, seed_base=0
    )
    assert all(o.survived for o in outcomes), [
        (o.seed, o.status, o.failure, o.audit_problems) for o in outcomes
    ]
    assert all(o.drill_ok for o in outcomes)
    # every admitted op eventually lands in the journal despite crashes
    assert all(o.ops_journaled == 3 * 6 for o in outcomes)
    # the sweep must actually exercise recovery somewhere
    assert sum(o.recoveries for o in outcomes) > 0


def test_overload_sheds_without_losing_admitted_keys(tmp_path):
    # budget far below the offered load: shedding is guaranteed; the
    # driver itself fails the run if an admitted key misses the journal
    out = run_serve(_cfg(tmp_path, sessions=4, ops=8, budget=2, window=2))
    assert out.survived, (out.failure, out.audit_problems)
    assert out.shed > 0
    assert out.peak_pending <= 2
    assert out.dropped == 0  # retry-forever: nothing abandoned
    assert out.ops_journaled == 4 * 8


def test_overload_with_bounded_backoffs_can_drop(tmp_path):
    out = run_serve(_cfg(tmp_path, sessions=4, ops=8, budget=1, window=1,
                         max_backoffs=0))
    assert out.survived, (out.failure, out.audit_problems)
    assert out.dropped > 0
    # dropped ops were never admitted, so the journal stays short —
    # and conservation still holds (the driver audits it)
    assert out.ops_journaled == 4 * 8 - out.dropped


def test_crash_plus_overload(tmp_path):
    outcomes = run_serve_campaign(
        _cfg(tmp_path, plan="crash", budget=3, window=2), seeds=4
    )
    assert all(o.survived for o in outcomes), [
        (o.seed, o.status, o.failure, o.audit_problems) for o in outcomes
    ]
    assert all(o.drill_ok for o in outcomes)


def test_sim_backend_ledger_drill(tmp_path):
    outcomes = run_serve_campaign(
        _cfg(tmp_path, backend="sim", plan="mixed", sessions=3, ops=4),
        seeds=3,
    )
    assert all(o.survived for o in outcomes), [
        (o.seed, o.status, o.failure, o.audit_problems) for o in outcomes
    ]
    assert all(o.drill_ok for o in outcomes)


def test_campaign_seeds_do_not_share_state(tmp_path):
    outcomes = run_serve_campaign(_cfg(tmp_path), seeds=2)
    dirs = {o.data_dir for o in outcomes}
    assert len(dirs) == 2
    # same config, different seed -> independent journals of equal length
    assert all(o.ops_journaled == 3 * 6 for o in outcomes)


def test_unknown_backend_rejected(tmp_path):
    with pytest.raises(ValueError, match="backend"):
        _cfg(tmp_path, backend="quantum")


def test_serve_run_is_deterministic(tmp_path):
    a = run_serve(_cfg(tmp_path / "a", plan="crash", seed=3))
    b = run_serve(_cfg(tmp_path / "b", plan="crash", seed=3))
    assert a.digest == b.digest
    assert a.recoveries == b.recoveries
    assert a.shed == b.shed
    assert a.makespan_ns == b.makespan_ns


def test_traced_serve_run_emits_service_events(tmp_path):
    from repro.obs import EventBus
    from repro.obs.events import SERVE_APPLY, WAL_APPEND

    bus = EventBus()
    out = run_serve(_cfg(tmp_path, sessions=2, ops=4), obs=bus)
    assert out.survived
    etypes = {e.etype for e in bus.events}
    assert SERVE_APPLY in etypes
    assert WAL_APPEND in etypes
