"""Serve-path metrics: schedule neutrality and smoothed admission.

The contract under test is twofold: attaching a metrics registry and
SLO tracker to a serve run must not move a single simulated decision
(byte-identical outcome), while *enabling admission smoothing* — a
config change, not an observability change — deliberately alters shed
decisions on flapping load.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, validate_prometheus_text
from repro.obs.slo import SloTracker
from repro.serve.admission import AdmissionController
from repro.serve.driver import ServeConfig, run_serve


def _outcome_key(o):
    return (
        o.status,
        o.digest,
        o.makespan_ns,
        o.ops_journaled,
        o.admitted,
        o.shed,
        o.recoveries,
        o.queue_len,
        o.drill_ok,
    )


@pytest.mark.parametrize("backend,plan", [("native", "crash"), ("sim", "none")])
def test_metrics_do_not_move_the_run(tmp_path, backend, plan):
    def one(metrics, slo, tag):
        cfg = ServeConfig(backend=backend, sessions=3, ops=6, k=8,
                          budget=12, plan=plan, seed=5,
                          data_dir=str(tmp_path / tag))
        return run_serve(cfg, metrics=metrics, slo=slo)

    bare = one(None, None, "bare")
    reg, slo = MetricsRegistry(), SloTracker()
    wired = one(reg, slo, "wired")
    assert _outcome_key(wired) == _outcome_key(bare)
    # and the run actually emitted: counters, histograms, valid text
    assert "repro_admission_admitted_total" in reg.names()
    assert "repro_wal_append_host_ns" in reg.names()
    assert validate_prometheus_text(reg.to_prometheus()) == []
    assert slo.report()["classes"]  # op classes observed


def test_serve_emits_recovery_and_checkpoint_metrics(tmp_path):
    reg = MetricsRegistry()
    cfg = ServeConfig(backend="native", sessions=3, ops=8, k=8,
                      checkpoint_every=4, plan="crash", seed=3,
                      data_dir=str(tmp_path / "d"))
    out = run_serve(cfg, metrics=reg)
    assert out.survived
    snap = reg.snapshot()
    if out.recoveries:
        rec = snap["repro_serve_recoveries_total"]["series"][0]["value"]
        assert rec == out.recoveries
        assert snap["repro_serve_recovery_host_ns"]["series"][0]["count"] >= 1
    assert "repro_serve_checkpoint_age_ops" in snap
    applied = sum(s["value"]
                  for s in snap["repro_serve_apply_total"]["series"])
    assert applied >= out.ops_journaled


def test_smoothed_admission_rides_through_a_flap():
    """Raw reads flap shed/admit when pending oscillates around the
    budget; the EWMA'd controller keeps admitting through the dip."""
    def flap(smoothing):
        adm = AdmissionController(window=64, budget=4,
                                  smoothing_half_life_ns=smoothing)
        # a sustained burst drives the (smoothed) level past the budget
        admitted = [f"s{i}" for i in range(20)
                    if adm.try_admit(f"s{i}", now=float(i)) is None]
        # load collapses for one instant...
        for sid in admitted:
            adm.complete(sid)
        # ...and the very next submit arrives half a tick later
        return adm.try_admit("probe", now=20.5)

    assert flap(None) is None  # raw: pending==0, admit
    verdict = flap(5.0)  # smoothed: level still ~7.3 > 4, shed
    assert verdict is not None and verdict.reason == "global-budget"


def test_smoothing_stops_admit_shed_flapping():
    """Oscillating load around the budget: the raw controller alternates
    admit/shed per crossing; the smoothed one settles to one regime."""
    def decisions(smoothing):
        adm = AdmissionController(window=1024, budget=3,
                                  smoothing_half_life_ns=smoothing)
        out = []
        held = []
        for step in range(12):
            now = float(step * 10)
            if step % 2 == 0:
                # burst: admit until the controller says stop
                for j in range(4):
                    v = adm.try_admit(f"s{step}.{j}", now=now + j)
                    out.append(v is None)
                    if v is None:
                        held.append(f"s{step}.{j}")
            else:
                while held:
                    adm.complete(held.pop())
        return out

    raw = decisions(None)
    smooth = decisions(5.0)
    assert raw != smooth  # smoothing changed real decisions
    flips = lambda seq: sum(a != b for a, b in zip(seq, seq[1:]))  # noqa: E731
    assert flips(smooth) < flips(raw)


def test_window_check_stays_raw_under_smoothing():
    adm = AdmissionController(window=2, budget=1024,
                              smoothing_half_life_ns=100.0)
    assert adm.try_admit("a", now=0.0) is None
    assert adm.try_admit("a", now=1.0) is None
    verdict = adm.try_admit("a", now=2.0)
    assert verdict is not None and verdict.reason == "session-window"


def test_load_snapshot_summarises_pending_history():
    adm = AdmissionController(window=64, budget=64,
                              smoothing_half_life_ns=1_000.0)
    for i in range(8):
        adm.try_admit(f"s{i}", now=float(i))
    snap = adm.load_snapshot(now=8.0)
    assert snap.count == 8
    assert snap.min == 0.0 and snap.max == 7.0  # observed before admit
