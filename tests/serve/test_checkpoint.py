"""Checkpoint store integrity + the export/restore differential.

The hypothesis suite is the checkpoint half of the durability story:
``export_state`` → JSON → ``restore_state`` must reproduce the queue
*exactly* — same digest, same contents, same simulated clock — and a
restored replica must stay behaviourally identical to the
uninterrupted oracle for arbitrary continued operation, on both
storage backends.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.native import NativeBGPQ
from repro.errors import ConfigurationError, DurabilityError
from repro.serve.checkpoint import CheckpointStore, state_digest


def _mk(storage="arena", k=4, payload_width=0):
    return NativeBGPQ(node_capacity=k, storage=storage,
                      payload_width=payload_width)


# -- store mechanics -------------------------------------------------------

def test_save_load_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    pq = _mk()
    pq.insert_bulk(np.array([5, 1, 9, 3], dtype=np.int64))
    state = pq.export_state()
    store.save(state, lsn=7)
    loaded, lsn = store.load_latest()
    assert lsn == 7
    assert state_digest(loaded) == state_digest(state)


def test_load_latest_empty_dir(tmp_path):
    assert CheckpointStore(tmp_path).load_latest() is None


def test_prune_keeps_newest(tmp_path):
    store = CheckpointStore(tmp_path, keep=2)
    pq = _mk()
    for lsn in (1, 2, 3, 4):
        store.save(pq.export_state(), lsn=lsn)
    names = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
    assert names == ["ckpt-000000000003.json", "ckpt-000000000004.json"]


def test_corrupt_newest_falls_back(tmp_path):
    store = CheckpointStore(tmp_path, keep=2)
    pq = _mk()
    pq.insert_bulk(np.array([1, 2], dtype=np.int64))
    store.save(pq.export_state(), lsn=1)
    pq.insert_bulk(np.array([3], dtype=np.int64))
    newest = store.save(pq.export_state(), lsn=2)
    newest.write_text(newest.read_text()[:-40])  # half-written save
    state, lsn = store.load_latest()
    assert lsn == 1  # fell back to the older, intact checkpoint


def test_all_corrupt_raises(tmp_path):
    store = CheckpointStore(tmp_path)
    pq = _mk()
    path = store.save(pq.export_state(), lsn=1)
    doc = json.loads(path.read_text())
    doc["state"]["heap_size"] = 99  # tamper: digest no longer matches
    path.write_text(json.dumps(doc))
    with pytest.raises(DurabilityError, match="integrity"):
        store.load_latest()


def test_digest_covers_lsn(tmp_path):
    store = CheckpointStore(tmp_path)
    pq = _mk()
    path = store.save(pq.export_state(), lsn=5)
    doc = json.loads(path.read_text())
    doc["lsn"] = 6  # swap the covered LSN without touching the state
    path.write_text(json.dumps(doc))
    with pytest.raises(DurabilityError):
        store.load_latest()


def test_digest_is_deterministic():
    a = _mk()
    b = _mk()
    keys = np.array([4, 4, 1, 7], dtype=np.int64)
    a.insert_bulk(keys)
    b.insert_bulk(keys)
    assert state_digest(a.export_state()) == state_digest(b.export_state())


# -- export/restore layout guards ------------------------------------------

def test_restore_rejects_wrong_k():
    state = _mk(k=4).export_state()
    with pytest.raises(ConfigurationError):
        _mk(k=8).restore_state(state)


def test_restore_rejects_wrong_payload_width():
    state = _mk(payload_width=0).export_state()
    with pytest.raises(ConfigurationError):
        _mk(payload_width=2).restore_state(state)


def test_restore_crosses_storage_backends():
    src = _mk(storage="arena")
    src.insert_bulk(np.arange(17, dtype=np.int64)[::-1].copy())
    dst = _mk(storage="list")
    dst.restore_state(src.export_state())
    assert state_digest(dst.export_state()) == state_digest(src.export_state())
    np.testing.assert_array_equal(
        np.sort(dst.snapshot_keys()), np.sort(src.snapshot_keys())
    )


# -- hypothesis differential: restore == uninterrupted oracle --------------

# batch sizes and deletemin counts are capped at the k=4 the tests use
ops_strategy = st.lists(
    st.one_of(
        st.lists(st.integers(min_value=0, max_value=500),
                 min_size=1, max_size=4).map(lambda ks: ("insert", ks)),
        st.integers(min_value=1, max_value=4).map(lambda n: ("deletemin", n)),
    ),
    max_size=24,
)


def _apply(pq, op):
    kind, arg = op
    if kind == "insert":
        keys = np.asarray(arg, dtype=np.int64)
        pay = (np.stack([keys * 2, keys * 3], axis=1)
               if pq.payload_width else None)
        pq.insert_bulk(keys, pay)
        return None
    got_k, got_p = pq.deletemin(arg)
    return got_k.tolist(), got_p.tolist()


@settings(max_examples=40, deadline=None)
@given(ops=ops_strategy, cut=st.integers(min_value=0, max_value=24),
       storage=st.sampled_from(["arena", "list"]),
       payload_width=st.sampled_from([0, 2]))
def test_checkpoint_restore_differential(ops, cut, storage, payload_width):
    """Snapshot at an arbitrary cut; the restored replica must replay
    the remaining ops with byte-identical results, state, and clock."""
    oracle = _mk(storage=storage, k=4, payload_width=payload_width)
    cut = min(cut, len(ops))
    for op in ops[:cut]:
        _apply(oracle, op)

    # snapshot through JSON, exactly as the checkpoint store does
    state = json.loads(json.dumps(oracle.export_state()))
    replica = _mk(storage=storage, k=4, payload_width=payload_width)
    replica.restore_state(state)

    assert state_digest(replica.export_state()) == state_digest(
        oracle.export_state()
    )
    assert replica.sim_time_ns_exact == oracle.sim_time_ns_exact
    assert len(replica) == len(oracle)

    for op in ops[cut:]:
        assert _apply(replica, op) == _apply(oracle, op)
    assert state_digest(replica.export_state()) == state_digest(
        oracle.export_state()
    )
    np.testing.assert_array_equal(
        np.sort(replica.snapshot_keys()), np.sort(oracle.snapshot_keys())
    )
