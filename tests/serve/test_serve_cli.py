"""`repro serve` and `repro runs` CLI verbs, including registry wiring."""

import json

import pytest

from repro.cli import main
from repro.registry import REGISTRY_ENV, RunRegistry


@pytest.fixture(autouse=True)
def isolated_dirs(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv(REGISTRY_ENV, str(tmp_path / "registry"))
    return tmp_path


SERVE_SMALL = ["serve", "--seeds", "2", "--sessions", "2", "--ops", "4"]


def test_serve_records_into_registry(isolated_dirs, capsys):
    assert main(SERVE_SMALL) == 0
    out = capsys.readouterr().out
    assert "survived" in out
    assert "[registry:" in out
    reg = RunRegistry(isolated_dirs / "registry")
    runs = reg.list_runs(kind="serve")
    assert len(runs) == 1
    assert runs[0]["status"] == "completed"
    assert runs[0]["summary"]["survived"] == 2
    art = isolated_dirs / "registry" / runs[0]["run_id"]
    assert (art / "serve_outcomes.json").exists()
    # the durable state itself is an artifact of the run
    assert (art / "data" / "seed-0" / "wal.jsonl").exists()


def test_serve_with_crash_faults(isolated_dirs, capsys):
    assert main(SERVE_SMALL + ["--faults"]) == 0
    out = capsys.readouterr().out
    assert "plan=crash" in out


def test_serve_sim_backend(isolated_dirs, capsys):
    assert main(SERVE_SMALL + ["--backend", "sim", "--faults", "mixed"]) == 0
    assert "sim backend" in capsys.readouterr().out


def test_serve_without_registry_uses_tempdir(isolated_dirs, monkeypatch,
                                             capsys):
    monkeypatch.setenv(REGISTRY_ENV, "")
    assert main(SERVE_SMALL) == 0
    assert "[registry:" not in capsys.readouterr().out


def test_runs_list_show_gc(isolated_dirs, capsys):
    assert main(SERVE_SMALL) == 0
    capsys.readouterr()

    assert main(["runs", "list"]) == 0
    out = capsys.readouterr().out
    assert "serve-" in out and "completed" in out

    run_id = RunRegistry(isolated_dirs / "registry").list_runs()[0]["run_id"]
    assert main(["runs", "show", run_id[:18]]) == 0
    out = capsys.readouterr().out
    shown = json.loads(out[: out.index("\nartifacts")])
    assert shown["run_id"] == run_id
    assert "serve_outcomes.json" in out

    assert main(["runs", "gc", "--keep", "0"]) == 0
    assert run_id in capsys.readouterr().out
    assert main(["runs", "list"]) == 0
    assert "no recorded runs" in capsys.readouterr().out


def test_runs_defaults_to_list(isolated_dirs, capsys):
    assert main(["runs"]) == 0
    assert "no recorded runs" in capsys.readouterr().out


def test_runs_show_needs_id(isolated_dirs, capsys):
    assert main(["runs", "show"]) == 2
    assert main(["runs", "show", "nope"]) == 2


def test_runs_unknown_target(isolated_dirs):
    assert main(["runs", "frobnicate"]) == 2


def test_runs_disabled_registry(isolated_dirs, monkeypatch):
    monkeypatch.setenv(REGISTRY_ENV, "")
    assert main(["runs", "list"]) == 2


def test_faults_cli_records_into_registry(isolated_dirs, capsys):
    assert main(["faults", "--queues", "bgpq", "--plans", "crash",
                 "--seeds", "1"]) == 0
    assert "[registry:" in capsys.readouterr().out
    runs = RunRegistry(isolated_dirs / "registry").list_runs(kind="faults")
    assert len(runs) == 1
    assert runs[0]["status"] == "completed"
