"""Write-ahead log: round-trips, tail discipline, corruption detection."""

import pytest

from repro.errors import DurabilityError
from repro.serve.wal import WalRecord, WriteAheadLog, _decode, _encode


def _wal_path(tmp_path):
    return tmp_path / WriteAheadLog.FILENAME


def test_append_assigns_consecutive_lsns(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        r1 = wal.append("s0", 0, "insert", keys=[3, 1])
        r2 = wal.append("s0", 1, "deletemin", count=2,
                        result={"keys": [1, 3], "pay": []})
        assert (r1.lsn, r2.lsn) == (1, 2)
        assert wal.last_lsn == 2
        assert wal.next_lsn == 3


def test_reopen_round_trips_records(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        wal.append("s0", 0, "insert", keys=[5, 2, 9], pay=[[1], [2], [3]])
        wal.append("s1", 0, "deletemin", count=1,
                   result={"keys": [2], "pay": [[2]]})
    with WriteAheadLog.open(tmp_path) as wal:
        recs = wal.records()
        assert [r.lsn for r in recs] == [1, 2]
        assert recs[0].keys == [5, 2, 9]
        assert recs[0].pay == [[1], [2], [3]]
        assert recs[1].result == {"keys": [2], "pay": [[2]]}
        # appends continue after the last durable LSN
        assert wal.append("s1", 1, "insert", keys=[7]).lsn == 3


def test_records_from_lsn_filters(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        for i in range(5):
            wal.append("s0", i, "insert", keys=[i])
        assert [r.lsn for r in wal.records(from_lsn=3)] == [3, 4, 5]
        assert len(wal) == 5


def test_torn_tail_is_truncated(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        wal.append("s0", 0, "insert", keys=[1])
        wal.append("s0", 1, "insert", keys=[2])
    # simulate a crash mid-append: a partial final line
    with open(_wal_path(tmp_path), "a", encoding="utf-8") as fh:
        fh.write('deadbeef {"lsn": 3, "sid": "s0"')
    with WriteAheadLog.open(tmp_path) as wal:
        assert [r.lsn for r in wal.records()] == [1, 2]
        assert wal.append("s0", 2, "insert", keys=[3]).lsn == 3
    # the torn line is gone from disk, replaced by the new record
    with WriteAheadLog.open(tmp_path) as wal:
        assert [r.lsn for r in wal.records()] == [1, 2, 3]


def test_midfile_corruption_raises(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        for i in range(3):
            wal.append("s0", i, "insert", keys=[i])
    lines = _wal_path(tmp_path).read_text().splitlines()
    lines[1] = lines[1][:-3] + "xxx"  # CRC now fails on a non-final record
    _wal_path(tmp_path).write_text("\n".join(lines) + "\n")
    with pytest.raises(DurabilityError, match="corrupt record at line 2"):
        WriteAheadLog.open(tmp_path)


def test_crc_failing_tail_is_tolerated(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        for i in range(3):
            wal.append("s0", i, "insert", keys=[i])
    lines = _wal_path(tmp_path).read_text().splitlines()
    lines[-1] = lines[-1][:-3] + "xxx"
    _wal_path(tmp_path).write_text("\n".join(lines) + "\n")
    with WriteAheadLog.open(tmp_path) as wal:
        assert [r.lsn for r in wal.records()] == [1, 2]


def test_lsn_gap_raises(tmp_path):
    rec1 = WalRecord(lsn=1, sid="s0", op_id=0, kind="insert", keys=[1])
    rec3 = WalRecord(lsn=3, sid="s0", op_id=1, kind="insert", keys=[2])
    _wal_path(tmp_path).write_text(
        _encode(rec1.to_body()) + "\n" + _encode(rec3.to_body()) + "\n"
    )
    with pytest.raises(DurabilityError, match="LSN gap"):
        WriteAheadLog.open(tmp_path)


def test_decode_rejects_malformed_lines():
    assert _decode("short") is None
    assert _decode("not-hex! {}") is None
    good = _encode({"lsn": 1})
    assert _decode(good) == {"lsn": 1}
    # valid CRC over invalid JSON
    import zlib

    text = "{not json"
    crc = zlib.crc32(text.encode()) & 0xFFFFFFFF
    assert _decode(f"{crc:08x} {text}") is None


def test_empty_dir_starts_at_lsn_one(tmp_path):
    with WriteAheadLog.open(tmp_path) as wal:
        assert wal.next_lsn == 1
        assert wal.records() == []
