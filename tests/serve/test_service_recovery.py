"""DurableService: recovery equals the uninterrupted run, at every cut.

The central claim of the durability design: a crash after *any*
journaled op recovers to byte-identical state (``state_digest``) vs a
run that never crashed.  The battery simulates the crash by abandoning
the service object mid-history and re-opening the data dir with a
fresh queue — exactly what the serve supervisor does.
"""

import numpy as np
import pytest

from repro.core.native import NativeBGPQ
from repro.errors import DurabilityError
from repro.serve.service import DurableService
from repro.serve.wal import WriteAheadLog


def _queue(payload_width=0):
    return NativeBGPQ(node_capacity=4, storage="arena",
                      payload_width=payload_width)


def _script(n_ops=20, seed=7):
    rng = np.random.default_rng(seed)
    ops = []
    for i in range(n_ops):
        if rng.random() < 0.6:
            keys = rng.integers(0, 100, size=int(rng.integers(1, 5))).tolist()
            ops.append({"sid": "s0", "op_id": i, "kind": "insert",
                        "keys": keys})
        else:
            ops.append({"sid": "s0", "op_id": i, "kind": "deletemin",
                        "count": int(rng.integers(1, 5))})
    return ops


def _oracle_digests(ops, tmp_path, checkpoint_every=4):
    """Run uninterrupted; digest after each op."""
    svc = DurableService.open(_queue(), tmp_path / "oracle",
                              checkpoint_every=checkpoint_every)
    digests = []
    for op in ops:
        svc.apply(op)
        digests.append(svc.digest())
    svc.close()
    return digests


@pytest.mark.parametrize("checkpoint_every", [1, 4, 100])
def test_recovery_is_byte_identical_at_every_cut(tmp_path, checkpoint_every):
    ops = _script()
    digests = _oracle_digests(ops, tmp_path, checkpoint_every)
    for cut in range(1, len(ops) + 1):
        data = tmp_path / f"cut-{checkpoint_every}-{cut}"
        svc = DurableService.open(_queue(), data,
                                  checkpoint_every=checkpoint_every)
        for op in ops[:cut]:
            svc.apply(op)
        svc.close()  # crash: the in-memory service is abandoned here
        recovered = DurableService.open(_queue(), data,
                                        checkpoint_every=checkpoint_every)
        assert recovered.digest() == digests[cut - 1], (
            f"cut={cut} ckpt_every={checkpoint_every}"
        )
        assert not recovered.recovery_info["fresh"]
        recovered.close()


def test_recovery_with_payloads(tmp_path):
    svc = DurableService.open(_queue(payload_width=2), tmp_path,
                              checkpoint_every=3)
    keys = np.array([9, 2, 5, 2], dtype=np.int64)
    svc.apply_insert("s0", 0, keys, pay=np.stack([keys * 2, keys * 3], axis=1))
    resp = svc.apply_deletemin("s0", 1, 2)
    assert resp["keys"] == [2, 2]
    assert sorted(resp["pay"]) == [[4, 6], [4, 6]]
    digest = svc.digest()
    svc.close()
    recovered = DurableService.open(_queue(payload_width=2), tmp_path)
    assert recovered.digest() == digest
    recovered.close()


def test_dedupe_makes_apply_idempotent(tmp_path):
    svc = DurableService.open(_queue(), tmp_path)
    first = svc.apply_insert("s0", 0, [4, 1])
    again = svc.apply_insert("s0", 0, [4, 1])
    assert again is first
    assert len(svc.wal) == 1  # the retransmit was not re-journaled
    got = svc.apply_deletemin("s0", 1, 2)
    assert svc.apply_deletemin("s0", 1, 2) is got
    svc.close()


def test_dedupe_survives_recovery(tmp_path):
    svc = DurableService.open(_queue(), tmp_path)
    svc.apply_insert("s0", 0, [4, 1])
    first = svc.apply_deletemin("s0", 1, 1)
    svc.close()
    recovered = DurableService.open(_queue(), tmp_path)
    replayed = recovered.apply_deletemin("s0", 1, 1)
    assert replayed["keys"] == first["keys"] == [1]
    assert len(recovered.wal) == 2  # no duplicate journal entry
    assert len(recovered.queue) == 1  # the key was not deleted twice
    recovered.close()


def test_replay_divergence_raises(tmp_path):
    svc = DurableService.open(_queue(), tmp_path)
    svc.apply_insert("s0", 0, [4, 1, 9])
    svc.apply_deletemin("s0", 1, 1)
    svc.close()
    # tamper: rewrite the journaled deletemin result to a wrong key
    wal_path = tmp_path / WriteAheadLog.FILENAME
    from repro.serve.wal import WalRecord, _decode, _encode

    lines = wal_path.read_text().splitlines()
    body = _decode(lines[1])
    body["result"]["keys"] = [999]
    lines[1] = _encode(body)
    wal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(DurabilityError, match="replay diverged"):
        DurableService.open(_queue(), tmp_path)


def test_checkpoint_bounds_replay(tmp_path):
    svc = DurableService.open(_queue(), tmp_path, checkpoint_every=4)
    for i in range(10):
        svc.apply_insert("s0", i, [i])
    svc.close()
    recovered = DurableService.open(_queue(), tmp_path, checkpoint_every=4)
    info = recovered.recovery_info
    assert info["ckpt_lsn"] == 8
    assert info["replayed"] == 2  # only the post-checkpoint suffix
    recovered.close()


def test_audit_uses_wal_as_ledger(tmp_path):
    svc = DurableService.open(_queue(), tmp_path)
    svc.apply_insert("s0", 0, [7, 3, 7])
    svc.apply_deletemin("s0", 1, 2)
    report = svc.audit(context="unit")
    assert report.ok, report.problems
    assert "conservation" in report.checks_run
    assert "arena" in report.checks_run
    svc.close()


def test_fresh_dir_is_fresh(tmp_path):
    svc = DurableService.open(_queue(), tmp_path)
    assert svc.recovery_info == {
        "fresh": True, "ckpt_lsn": 0, "replayed": 0,
        "digest": svc.recovery_info["digest"],
    }
    assert len(svc.queue) == 0
    svc.close()
