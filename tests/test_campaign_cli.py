"""`repro faults` CLI: exit codes, report rendering, failure repro hints."""

import numpy as np

from repro.campaign import QUEUE_FACTORIES
from repro.cli import main
from repro.core import BGPQ


class _LossyBGPQ(BGPQ):
    """A sabotaged queue that silently drops the largest key of every
    insert batch — the auditor must catch the conservation violation."""

    name = "LossyBGPQ"

    def insert_op(self, keys, payload=None):
        keys = np.sort(np.asarray(keys))
        return (yield from super().insert_op(keys[:-1]))


def test_faults_cli_clean_campaign_exits_zero(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # bench_results/ lands in the tmp dir
    rc = main(
        ["faults", "--seeds", "2", "--queues", "bgpq", "--plans", "crash"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "Fault campaign" in out
    assert "survived and passed the heap audit" in out
    assert (tmp_path / "bench_results").exists()


def test_faults_cli_audit_failure_exits_nonzero(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setitem(
        QUEUE_FACTORIES,
        "lossy",
        lambda k: _LossyBGPQ(node_capacity=k, max_keys=1 << 14),
    )
    rc = main(
        ["faults", "--seeds", "2", "--queues", "lossy", "--plans", "none"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "audit-failed" in out
    assert "reproduce a failure" in out
    assert "--seed-base" in out  # the repro hint names the seed knob


def test_faults_cli_multiplan_sweep(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    rc = main(
        [
            "faults",
            "--seeds", "2",
            "--queues", "bgpq,tbb",
            "--plans", "timeout,jitter",
            "--threads", "3",
            "--ops", "4",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    # one summary row per (queue, plan) cell
    for token in ("bgpq", "tbb", "timeout", "jitter"):
        assert token in out
