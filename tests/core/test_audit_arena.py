"""HeapAuditor's arena-storage pass: dead rows and the row-0 contract."""

import numpy as np

from repro.core import BGPQ, HeapAuditor
from repro.core.native import NativeBGPQ


def _native(storage="arena"):
    pq = NativeBGPQ(node_capacity=4, storage=storage)
    pq.insert_bulk(np.array([8, 3, 5, 1, 9, 2], dtype=np.int64))
    return pq


def _sim():
    pq = BGPQ(node_capacity=4, max_keys=1 << 10, storage="arena")
    return pq


def test_clean_native_arena_passes():
    pq = _native()
    report = HeapAuditor(pq).audit()
    assert report.ok, report.problems
    assert "arena" in report.checks_run


def test_native_list_backend_skips_arena_check():
    pq = _native(storage="list")
    report = HeapAuditor(pq).audit()
    assert report.ok, report.problems
    assert "arena" not in report.checks_run


def test_native_dead_row_with_keys_flagged():
    pq = _native()
    dead = pq._heap_size + 1
    assert dead < pq._arena.rows  # the arena preallocates beyond the heap
    pq._arena.counts[dead] = 2  # stale keys a retired node left behind
    report = HeapAuditor(pq).audit()
    assert any(f"row {dead}" in p and "beyond heap_size" in p
               for p in report.problems), report.problems


def test_native_unsorted_pbuffer_flagged():
    pq = _native()
    arena = pq._arena
    arena.counts[0] = 2
    arena.keys[0, :2] = [7, 3]  # descending: violates the sorted-run contract
    report = HeapAuditor(pq).audit()
    assert any("pBuffer unsorted" in p for p in report.problems), \
        report.problems


def test_native_overfull_pbuffer_flagged():
    pq = _native()
    arena = pq._arena
    arena.counts[0] = arena.k  # pBuffer must stay strictly under k
    arena.keys[0, :] = np.arange(arena.k)
    report = HeapAuditor(pq).audit()
    assert any("pBuffer holds" in p for p in report.problems), report.problems


def test_sim_clean_arena_passes():
    pq = _sim()
    report = HeapAuditor(pq).audit()
    assert report.ok, report.problems
    assert "arena" in report.checks_run


def test_sim_reserved_row_zero_write_flagged():
    pq = _sim()
    pq.store.arena.counts[0] = 1  # stray write: sim pBuffer is elsewhere
    report = HeapAuditor(pq).audit()
    assert any("reserved arena row 0" in p for p in report.problems), \
        report.problems


def test_sim_dead_row_with_keys_flagged():
    pq = _sim()
    dead = pq.store.heap_size + 1
    assert dead < pq.store.arena.rows
    pq.store.arena.counts[dead] = 3
    report = HeapAuditor(pq).audit()
    assert any("beyond heap_size" in p for p in report.problems), \
        report.problems
