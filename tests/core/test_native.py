"""NativeBGPQ tests: oracle differential, payloads, cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SequentialPQ
from repro.core.native import NativeBGPQ
from repro.device import GpuContext
from repro.errors import ConfigurationError


def test_roundtrip():
    pq = NativeBGPQ(node_capacity=8)
    pq.insert([5, 1, 3])
    keys, _ = pq.deletemin(3)
    assert list(keys) == [1, 3, 5]
    assert len(pq) == 0


def test_empty_deletemin():
    pq = NativeBGPQ(node_capacity=8)
    keys, payload = pq.deletemin(4)
    assert keys.size == 0 and payload.shape[0] == 0


def test_bool_and_len():
    pq = NativeBGPQ(node_capacity=4)
    assert not pq
    pq.insert([1, 2])
    assert pq and len(pq) == 2


def test_validation():
    with pytest.raises(ConfigurationError):
        NativeBGPQ(node_capacity=1)
    with pytest.raises(ConfigurationError):
        NativeBGPQ(node_capacity=4, storage="rope")
    pq = NativeBGPQ(node_capacity=4)
    with pytest.raises(ValueError):
        pq.deletemin(0)
    with pytest.raises(ValueError):
        pq.deletemin(5)
    with pytest.raises(ValueError):
        pq.insert(np.zeros((2, 2)))


def test_oversize_insert_chunks_internally():
    # >k batches used to raise; now they chunk via the bulk path
    pq = NativeBGPQ(node_capacity=4)
    pq.insert(np.arange(11)[::-1])
    assert len(pq) == 11
    keys, _ = pq.deletemin(4)
    assert list(keys) == [0, 1, 2, 3]
    assert pq.check_invariants() == []


def test_payload_travels_with_keys():
    pq = NativeBGPQ(node_capacity=4, payload_width=2)
    pq.insert([30, 10], payload=[[3, 33], [1, 11]])
    pq.insert([20], payload=[[2, 22]])
    keys, payload = pq.deletemin(3)
    assert list(keys) == [10, 20, 30]
    assert payload.tolist() == [[1, 11], [2, 22], [3, 33]]


def test_payload_shape_validation():
    pq = NativeBGPQ(node_capacity=4, payload_width=2)
    with pytest.raises(ValueError):
        pq.insert([1], payload=[[1, 2, 3]])


def test_payload_consistency_through_heapify():
    """payload[i] == key-derived row must hold after deep mixing."""
    pq = NativeBGPQ(node_capacity=8, payload_width=1)
    rng = np.random.default_rng(0)
    for _ in range(60):
        keys = rng.integers(0, 10**6, size=int(rng.integers(1, 9)))
        pq.insert(keys, payload=keys.reshape(-1, 1) * 3)
        if rng.random() < 0.4:
            keys_out, pay = pq.deletemin(int(rng.integers(1, 9)))
            assert np.array_equal(pay.ravel(), keys_out * 3)
    while pq:
        keys_out, pay = pq.deletemin(8)
        assert np.array_equal(pay.ravel(), keys_out * 3)


def test_matches_oracle_strict():
    pq = NativeBGPQ(node_capacity=16)
    oracle = SequentialPQ()
    rng = np.random.default_rng(7)
    for _ in range(400):
        if rng.random() < 0.55:
            batch = rng.integers(0, 10**6, size=int(rng.integers(1, 17)))
            pq.insert(batch)
            oracle.insert(batch)
        else:
            c = int(rng.integers(1, 17))
            got, _ = pq.deletemin(c)
            assert np.array_equal(got, oracle.deletemin(c))
        assert len(pq) == len(oracle)
    assert pq.check_invariants() == []
    assert np.array_equal(np.sort(pq.snapshot_keys()), oracle.snapshot_keys())


def test_cost_accounting_accumulates_with_ctx():
    pq = NativeBGPQ(node_capacity=64, ctx=GpuContext.default())
    assert pq.sim_time_ns == 0.0
    pq.insert(np.arange(64))
    t1 = pq.sim_time_ns
    assert t1 > 0
    pq.deletemin(64)
    assert pq.sim_time_ns > t1
    assert pq.sim_time_ms == pq.sim_time_ns / 1e6


def test_no_cost_accounting_without_ctx():
    pq = NativeBGPQ(node_capacity=8)
    pq.insert([1, 2, 3])
    assert pq.sim_time_ns == 0.0


def test_interior_nodes_stay_full():
    pq = NativeBGPQ(node_capacity=8)
    rng = np.random.default_rng(1)
    for _ in range(100):
        pq.insert(rng.integers(0, 10**6, size=8))
    assert pq.check_invariants() == []
    for _ in range(30):
        pq.deletemin(int(rng.integers(1, 9)))
        assert pq.check_invariants() == []


@given(
    st.lists(
        st.one_of(
            st.lists(st.integers(0, 2**30), min_size=1, max_size=8).map(
                lambda ks: ("insert", ks)
            ),
            st.integers(1, 8).map(lambda c: ("deletemin", c)),
        ),
        max_size=80,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_oracle_equivalence(script):
    pq = NativeBGPQ(node_capacity=8)
    oracle = SequentialPQ()
    for kind, arg in script:
        if kind == "insert":
            pq.insert(arg)
            oracle.insert(arg)
        else:
            got, _ = pq.deletemin(arg)
            assert np.array_equal(got, oracle.deletemin(arg))
    assert pq.check_invariants() == []
    assert np.array_equal(np.sort(pq.snapshot_keys()), oracle.snapshot_keys())


@pytest.mark.parametrize("storage", ["arena", "list"])
def test_peek_tracks_global_min_without_mutating(storage):
    pq = NativeBGPQ(node_capacity=4, storage=storage)
    assert pq.peek() is None
    pq.insert([7])  # buffered only: heap still empty
    assert pq.peek() == 7 and len(pq) == 1
    pq.insert([5, 9, 1, 3, 8])  # overflows into the heap
    before = len(pq)
    assert pq.peek() == 1
    assert len(pq) == before  # peek is read-only
    keys, _ = pq.deletemin(pq.k)
    assert keys[0] == 1
    while pq:
        expect = np.sort(pq.snapshot_keys())[0]
        assert pq.peek() == expect
        pq.deletemin(1)
    assert pq.peek() is None
