"""Shared helpers for core tests."""

import numpy as np
import pytest

from repro.core import BGPQ
from repro.device import GpuContext


def small_ctx(blocks: int = 4, threads: int = 64) -> GpuContext:
    return GpuContext.default(blocks=blocks, threads_per_block=threads)


def make_pq(k: int = 16, **kw) -> BGPQ:
    return BGPQ(small_ctx(), node_capacity=k, max_keys=1 << 16, **kw)


def run_single(pq, script, seed: int = 0):
    """Run a list of ("insert", keys) / ("deletemin", count) ops on one
    simulated thread; returns the list of deletemin results in order."""
    from repro.sim import Engine

    results = []

    def thread():
        for kind, arg in script:
            if kind == "insert":
                yield from pq.insert_op(np.asarray(arg))
            else:
                got = yield from pq.deletemin_op(arg)
                results.append(got)

    eng = Engine(seed=seed)
    eng.spawn(thread())
    eng.run()
    return results


@pytest.fixture
def pq():
    return make_pq()
