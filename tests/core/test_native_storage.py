"""Differential suite: arena vs list storage vs an exact oracle.

The arena backend must be *bit-identical* to the legacy list backend —
same keys, same payload rows, same exact simulated time — over
arbitrary interleavings of insert / insert_bulk / deletemin, and both
must agree with a sequential oracle on key content.  The suites run at
small k so hypothesis can explore deep heap shapes quickly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SequentialPQ
from repro.core.native import NativeBGPQ
from repro.device import GpuContext

K = 8


def _pair(payload_width=2, ctx=True):
    kwargs = dict(
        node_capacity=K,
        ctx=GpuContext.default() if ctx else None,
        payload_width=payload_width,
    )
    return (
        NativeBGPQ(storage="arena", **kwargs),
        NativeBGPQ(storage="list", **kwargs),
    )


def _payload(keys: np.ndarray, seq: int) -> np.ndarray:
    """Unique, key-derived rows: column 0 ties the row to its key,
    column 1 to its submission order — so a misrouted payload shows up
    even among equal keys."""
    keys = np.asarray(keys, dtype=np.int64)
    return np.stack(
        [keys * 3, np.arange(seq, seq + keys.size, dtype=np.int64)], axis=1
    )


_script = st.lists(
    st.one_of(
        st.lists(st.integers(0, 2**20), min_size=1, max_size=K).map(
            lambda ks: ("insert", ks)
        ),
        st.lists(st.integers(0, 2**20), min_size=1, max_size=5 * K).map(
            lambda ks: ("bulk", ks)
        ),
        st.integers(1, K).map(lambda c: ("deletemin", c)),
    ),
    max_size=60,
)


@given(_script)
@settings(max_examples=60, deadline=None)
def test_arena_list_bit_identical(script):
    arena, legacy = _pair()
    oracle = SequentialPQ()
    seq = 0
    for kind, arg in script:
        if kind == "deletemin":
            ka, pa = arena.deletemin(arg)
            kl, pl = legacy.deletemin(arg)
            assert np.array_equal(ka, kl)
            assert np.array_equal(pa, pl)
            assert np.array_equal(ka, oracle.deletemin(arg))
            assert np.array_equal(pa[:, 0], ka * 3)  # payload alignment
        else:
            keys = np.asarray(arg, dtype=np.int64)
            pay = _payload(keys, seq)
            seq += keys.size
            method = "insert_bulk" if kind == "bulk" else "insert"
            getattr(arena, method)(keys, payload=pay)
            getattr(legacy, method)(keys, payload=pay)
            oracle.insert(keys)
        # exact-time parity: both backends charge identical formulas in
        # identical order, and Fraction accumulation makes that testable
        # as equality rather than approximation
        assert arena.sim_time_ns_exact == legacy.sim_time_ns_exact
        assert len(arena) == len(legacy) == len(oracle)
    assert arena.check_invariants() == []
    assert legacy.check_invariants() == []
    assert np.array_equal(
        np.sort(arena.snapshot_keys()), oracle.snapshot_keys()
    )
    assert np.array_equal(
        np.sort(arena.snapshot_keys()), np.sort(legacy.snapshot_keys())
    )


@given(
    st.lists(st.integers(0, 2**20), min_size=0, max_size=10 * K),
    st.integers(1, K),
)
@settings(max_examples=40, deadline=None)
def test_build_matches_bulk_drain(keys, count):
    """build() loads the same multiset bulk insertion would, satisfies
    the heap invariants by construction, and drains identically on both
    backends (payload rows included)."""
    keys = np.asarray(keys, dtype=np.int64)
    pay = _payload(keys, 0)
    arena, legacy = _pair(ctx=False)
    arena.build(keys, payload=pay)
    legacy.build(keys, payload=pay)
    assert arena.check_invariants() == []
    assert legacy.check_invariants() == []
    assert len(arena) == len(legacy) == keys.size

    reference = NativeBGPQ(node_capacity=K, payload_width=2)
    reference.insert_bulk(keys, payload=pay)
    while arena:
        ka, pa = arena.deletemin(count)
        kl, pl = legacy.deletemin(count)
        kr, pr = reference.deletemin(count)
        assert np.array_equal(ka, kl) and np.array_equal(ka, kr)
        assert np.array_equal(pa, pl)
        # keys drain in globally sorted order with aligned payloads
        assert np.array_equal(pa[:, 0], ka * 3)
    assert not legacy and not reference


def test_build_requires_empty_queue():
    pq = NativeBGPQ(node_capacity=K)
    pq.insert([1])
    with pytest.raises(ValueError, match="empty"):
        pq.build([2, 3])


def test_build_charges_device_time():
    pq = NativeBGPQ(node_capacity=K, ctx=GpuContext.default())
    pq.build(np.arange(5 * K))
    assert pq.sim_time_ns > 0


def test_clear_resets_both_backends():
    for storage in ("arena", "list"):
        pq = NativeBGPQ(node_capacity=K, storage=storage)
        pq.insert_bulk(np.arange(7 * K))
        pq.clear()
        assert len(pq) == 0 and not pq
        pq.insert([3, 1])
        keys, _ = pq.deletemin(2)
        assert list(keys) == [1, 3]


def test_sim_time_accumulates_exactly():
    """Satellite: no float drift.  n identical charges must sum to
    exactly n times one charge — true for Fraction accumulation, false
    in general for repeated float addition."""
    from fractions import Fraction

    pq = NativeBGPQ(node_capacity=K, ctx=GpuContext.default())
    pq.deletemin(1)  # empty queue: charges the lock pair only
    one = pq.sim_time_ns_exact
    assert isinstance(one, Fraction) and one > 0
    for _ in range(9_999):
        pq.deletemin(1)
    assert pq.sim_time_ns_exact == 10_000 * one


def test_arena_growth_preserves_content():
    """Doubling growth must carry every live row across reallocation."""
    pq = NativeBGPQ(node_capacity=K, storage="arena", payload_width=1)
    oracle = SequentialPQ()
    rng = np.random.default_rng(3)
    for _ in range(64):  # far past the initial 8-row arena
        keys = rng.integers(0, 1 << 20, size=K)
        pq.insert(keys, payload=keys.reshape(-1, 1))
        oracle.insert(keys)
    assert pq.check_invariants() == []
    while pq:
        keys, pay = pq.deletemin(K)
        assert np.array_equal(keys, oracle.deletemin(K))
        assert np.array_equal(pay.ravel(), keys)
