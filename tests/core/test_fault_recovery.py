"""Recovery paths: crash rollback, bounded-wait aborts, HeapAuditor,
and the seed-swept fault campaign acceptance run."""

import numpy as np
import pytest

from repro.campaign import QUEUE_FACTORIES, queue_factory, run_campaign, run_one
from repro.core import BGPQ, HeapAuditor, OpGuard, bounded_acquire
from repro.errors import (
    OperationAborted,
    SimThreadError,
    ThreadCrashed,
)
from repro.sim import Acquire, Compute, Engine, Label, Release, SimLock
from repro.sim.faults import CRASHPOINT


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _populated_pq(k=4, n_batches=5, root_wait_ns=None):
    """A BGPQ filled with deterministic random batches via the engine."""
    pq = BGPQ(node_capacity=k, max_keys=1 << 12, root_wait_ns=root_wait_ns)
    rng = np.random.default_rng(1234)
    batches = [
        rng.integers(0, 10_000, size=k).astype(np.int64) for _ in range(n_batches)
    ]

    def seeder():
        for b in batches:
            yield from pq.insert_op(b)

    eng = Engine(seed=0)
    eng.spawn(seeder())
    eng.run()
    return pq, batches


def _fingerprint(pq):
    """Everything a rollback must restore, as one comparable value."""
    store = pq.store
    return (
        np.sort(pq.snapshot_keys()).tolist(),
        len(pq),
        store.heap_size,
        [n.state for n in store.nodes],
        [n.count for n in store.nodes],
        [lk.owner for lk in store.locks],
    )


def _crash_at_nth_crashpoint(gen, n):
    """Throw ThreadCrashed into ``gen`` at its n-th crashpoint label.

    Unlike the probabilistic injector, this hits every crashpoint of an
    operation exactly, one per run.  Returns ("done", value) when the
    operation finishes before reaching the n-th crashpoint.
    """
    seen = 0
    send = None
    throw = None
    while True:
        try:
            if throw is not None:
                exc, throw = throw, None
                eff = gen.throw(exc)
            else:
                eff = gen.send(send)
        except StopIteration as stop:
            return ("done", stop.value)
        send = None
        if eff.__class__ is Label and eff.tag == CRASHPOINT:
            seen += 1
            if seen == n:
                throw = ThreadCrashed("surgical", seen)
                continue
        send = yield eff


def _run_crashing(pq, op_gen, n):
    """Run one op with a crash at its n-th crashpoint; report crashed?"""
    eng = Engine(seed=0)
    t = eng.spawn(_crash_at_nth_crashpoint(op_gen, n), name="surgical")
    try:
        eng.run()
    except SimThreadError as err:
        assert isinstance(err.original, ThreadCrashed)
        return True
    assert t.result[0] == "done"
    return False


# ---------------------------------------------------------------------------
# crash rollback restores exact pre-op state
# ---------------------------------------------------------------------------
def test_insert_crash_rolls_back_at_every_crashpoint():
    rng = np.random.default_rng(7)
    n = 1
    while True:
        pq, _ = _populated_pq()
        before = _fingerprint(pq)
        batch = rng.integers(0, 10_000, size=pq.k).astype(np.int64)
        crashed = _run_crashing(pq, pq.insert_op(batch), n)
        if not crashed:
            break
        assert _fingerprint(pq) == before, f"crashpoint {n} leaked state"
        assert pq.stats["insert_rollbacks"] == 1
        report = HeapAuditor(pq).audit(context=f"crashpoint {n}")
        assert report.ok, report.problems
        n += 1
    assert n > 3  # the sweep actually exercised several crashpoints


def test_insert_crash_rolls_back_partial_buffer_path():
    """Crash an insert that lands in the partial buffer (non-full batch)."""
    pq, _ = _populated_pq()
    n = 1
    while True:
        pq, _ = _populated_pq()
        before = _fingerprint(pq)
        buffered = np.array([5, 17], dtype=np.int64)  # < k: pbuffer path
        crashed = _run_crashing(pq, pq.insert_op(buffered), n)
        if not crashed:
            break
        assert _fingerprint(pq) == before, f"crashpoint {n} leaked state"
        n += 1
    assert n > 1


def test_deletemin_crash_rolls_back_at_every_crashpoint():
    n = 1
    while True:
        pq, _ = _populated_pq()
        before = _fingerprint(pq)
        crashed = _run_crashing(pq, pq.deletemin_op(pq.k), n)
        if not crashed:
            break
        assert _fingerprint(pq) == before, f"crashpoint {n} leaked state"
        assert pq.stats["delete_rollbacks"] == 1
        report = HeapAuditor(pq).audit(context=f"crashpoint {n}")
        assert report.ok, report.problems
        n += 1
    assert n > 3


def test_crash_after_commit_point_completes_operation():
    """Once an insert commits, later faults cannot un-publish it: the
    final crashpoint precedes the commit, so a finished op has no
    crashpoints left and a scheduled crash is simply missed."""
    pq, _ = _populated_pq()
    batch = np.arange(pq.k, dtype=np.int64)
    before_len = len(pq)
    crashed = _run_crashing(pq, pq.insert_op(batch), n=100)
    assert not crashed
    assert len(pq) == before_len + pq.k
    assert HeapAuditor(pq).audit().ok


# ---------------------------------------------------------------------------
# bounded-wait abort
# ---------------------------------------------------------------------------
def test_bounded_acquire_gives_up_after_retries():
    lock = SimLock("hot")
    attempts = []

    class _Model:
        @staticmethod
        def lock_acquire_ns():
            return 5.0

    def holder():
        yield Acquire(lock)
        yield Compute(1_000_000.0)
        yield Release(lock)

    def contender():
        ok = yield from bounded_acquire(lock, _Model, wait_ns=10.0, retries=2)
        attempts.append(ok)

    eng = Engine(seed=0)
    eng.spawn(holder())
    eng.spawn(contender(), at=1.0)  # holder owns the lock first
    eng.run()
    assert attempts == [False]
    assert lock.timeouts == 3  # initial wait + 2 retries
    assert not lock.waiters


def test_insert_abort_under_contention_leaves_queue_clean():
    pq, _ = _populated_pq(root_wait_ns=50.0)
    before = _fingerprint(pq)
    aborted = []

    def hog():
        yield Acquire(pq.store.root_lock)
        yield Compute(1_000_000.0)  # way beyond the bounded waits
        yield Release(pq.store.root_lock)

    def inserter():
        try:
            yield from pq.insert_op(np.arange(pq.k, dtype=np.int64))
        except OperationAborted as err:
            aborted.append(err)

    eng = Engine(seed=0)
    eng.spawn(hog())
    eng.spawn(inserter(), name="ins", at=1.0)
    eng.run()
    assert len(aborted) == 1
    assert aborted[0].op == "insert"
    assert pq.stats["insert_aborts"] == 1
    assert pq.stats["root_timeouts"] == 1
    assert _fingerprint(pq) == before
    assert HeapAuditor(pq).audit().ok


def test_deletemin_abort_under_contention_leaves_queue_clean():
    pq, _ = _populated_pq(root_wait_ns=50.0)
    before = _fingerprint(pq)
    aborted = []

    def hog():
        yield Acquire(pq.store.root_lock)
        yield Compute(1_000_000.0)
        yield Release(pq.store.root_lock)

    def deleter():
        try:
            yield from pq.deletemin_op(pq.k)
        except OperationAborted as err:
            aborted.append(err)

    eng = Engine(seed=0)
    eng.spawn(hog())
    eng.spawn(deleter(), name="del", at=1.0)
    eng.run()
    assert len(aborted) == 1
    assert aborted[0].op == "delete"
    assert pq.stats["delete_aborts"] == 1
    assert _fingerprint(pq) == before


# ---------------------------------------------------------------------------
# OpGuard mechanics
# ---------------------------------------------------------------------------
def test_opguard_rollback_runs_undos_reversed_then_releases():
    a, b = SimLock("a"), SimLock("b")
    order = []
    guard = OpGuard()

    def crasher():
        yield Acquire(a)
        guard.hold(a)
        yield Acquire(b)
        guard.hold(b)
        guard.on_abort(lambda: order.append("undo1"))
        guard.on_abort(lambda: order.append("undo2"))
        yield from guard.rollback()

    eng = Engine(seed=0)
    eng.spawn(crasher())
    eng.run()
    assert order == ["undo2", "undo1"]  # LIFO
    assert a.owner is None and b.owner is None


def test_opguard_commit_makes_rollback_inert():
    lock = SimLock("l")
    guard = OpGuard()
    touched = []

    def worker():
        yield Acquire(lock)
        guard.hold(lock)
        guard.on_abort(lambda: touched.append("undone"))
        guard.commit()
        yield from guard.rollback()  # no-op now
        yield Release(lock)  # still ours to release

    eng = Engine(seed=0)
    eng.spawn(worker())
    eng.run()
    assert touched == []
    assert lock.owner is None
    assert guard.committed


# ---------------------------------------------------------------------------
# HeapAuditor detects planted violations
# ---------------------------------------------------------------------------
def test_auditor_passes_on_clean_queue():
    pq, batches = _populated_pq()
    report = HeapAuditor(pq).audit(inserted=batches, removed=[])
    assert report.ok
    assert "conservation" in report.checks_run


def test_auditor_detects_heap_property_violation():
    pq, _ = _populated_pq()
    root = pq.store.root
    root.buf[:root.count] = root.buf[:root.count][::-1].copy()
    report = HeapAuditor(pq).audit()
    assert not report.ok
    assert any("sorted" in p or "heap" in p for p in report.problems)


def test_auditor_detects_held_lock():
    pq, _ = _populated_pq()
    ghost = type("Ghost", (), {"name": "ghost"})()
    pq.store.root_lock.owner = ghost
    report = HeapAuditor(pq).audit()
    assert not report.ok
    assert any("ghost" in p for p in report.problems)


def test_auditor_detects_lost_key():
    pq, batches = _populated_pq()
    extra = np.array([42], dtype=np.int64)  # claimed inserted, never was
    report = HeapAuditor(pq).audit(inserted=batches + [extra], removed=[])
    assert not report.ok
    assert any("drift" in p or "mismatch" in p for p in report.problems)


def test_auditor_detects_length_drift():
    pq, _ = _populated_pq()
    pq._total_keys += 1
    report = HeapAuditor(pq).audit()
    assert not report.ok


def test_auditor_detects_bad_node_state():
    pq, _ = _populated_pq()
    pq.store.root.state = 2  # TARGET at quiescence
    report = HeapAuditor(pq).audit()
    assert not report.ok


# ---------------------------------------------------------------------------
# campaign: the acceptance sweep
# ---------------------------------------------------------------------------
def test_campaign_bgpq_survives_20_seeds_of_every_plan():
    result = run_campaign(
        queues=("bgpq",),
        plans=("crash", "timeout", "jitter"),
        seeds=20,
    )
    assert len(result.outcomes) == 60
    assert result.ok, [
        (o.queue, o.plan, o.seed, o.status, o.failure, o.audit_problems)
        for o in result.failures()
    ]
    # the sweep must actually inject faults, including real crashes
    assert sum(o.injected for o in result.outcomes) > 0
    assert any(o.crashed_threads for o in result.outcomes)
    assert any(o.rollbacks for o in result.outcomes)


def test_run_one_is_deterministic():
    a = run_one("bgpq", "mixed", seed=5)
    b = run_one("bgpq", "mixed", seed=5)
    assert (a.status, a.injected, a.crashed_threads, a.aborted_ops,
            a.rollbacks, a.makespan_ns) == (
        b.status, b.injected, b.crashed_threads, b.aborted_ops,
        b.rollbacks, b.makespan_ns)


def test_queue_factory_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown queue"):
        queue_factory("nope")
    assert set(QUEUE_FACTORIES) >= {"bgpq", "bgpq-bu", "tbb", "hunt", "ljsl"}
