"""HeapStorage / index arithmetic tests."""

import numpy as np
import pytest

from repro.core import HeapStorage, left, level, parent, path_next, right
from repro.core.node import AVAIL
from repro.errors import CapacityError


def test_index_arithmetic():
    assert parent(2) == 1 and parent(3) == 1
    assert left(1) == 2 and right(1) == 3
    assert left(5) == 10 and right(5) == 11
    assert level(1) == 0 and level(2) == 1 and level(7) == 2 and level(8) == 3


def test_path_next_walks_root_to_target():
    # path to 11 (1011b) is 1 -> 2 -> 5 -> 11
    assert path_next(1, 11) == 2
    assert path_next(2, 11) == 5
    assert path_next(5, 11) == 11


def test_path_next_rejects_non_descendants():
    with pytest.raises(ValueError):
        path_next(3, 11)  # 11 is in 2's subtree
    with pytest.raises(ValueError):
        path_next(11, 5)  # target above cur


def test_grow_and_capacity():
    st = HeapStorage(max_nodes=3, node_capacity=4)
    st.heap_size = 1
    assert st.grow() == 2
    assert st.grow() == 3
    with pytest.raises(CapacityError):
        st.grow()


def test_root_and_lock_sharing():
    st = HeapStorage(max_nodes=4, node_capacity=4)
    assert st.root is st.node(1)
    assert st.root_lock is st.lock(1)
    assert st.lock(2) is not st.lock(3)


def test_in_bounds():
    st = HeapStorage(max_nodes=4, node_capacity=4)
    assert st.in_bounds(1) and st.in_bounds(4)
    assert not st.in_bounds(0) and not st.in_bounds(5)


def test_requires_root():
    with pytest.raises(CapacityError):
        HeapStorage(max_nodes=0, node_capacity=4)


def test_check_heap_property_detects_violation():
    st = HeapStorage(max_nodes=3, node_capacity=2)
    st.heap_size = 2
    st.node(1).set_keys(np.array([10, 20]))
    st.node(1).state = AVAIL
    st.node(2).set_keys(np.array([5, 30]))  # min 5 < parent max 20
    st.node(2).state = AVAIL
    problems = st.check_heap_property()
    assert any("node 2" in p for p in problems)


def test_check_heap_property_ok():
    st = HeapStorage(max_nodes=3, node_capacity=2)
    st.heap_size = 3
    st.node(1).set_keys(np.array([1, 2]))
    st.node(2).set_keys(np.array([2, 9]))
    st.node(3).set_keys(np.array([3, 4]))
    for i in (1, 2, 3):
        st.node(i).state = AVAIL
    assert st.check_heap_property() == []


def test_all_keys_collects_avail_nodes_only():
    st = HeapStorage(max_nodes=3, node_capacity=2)
    st.heap_size = 2
    st.node(1).set_keys(np.array([1, 2]))
    st.node(1).state = AVAIL
    st.node(2).set_keys(np.array([3, 4]))  # left EMPTY -> excluded
    assert sorted(st.all_keys().tolist()) == [1, 2]
