"""BGPQ semantics under single-threaded execution.

These tests pin down the data-structure behaviour in isolation from
concurrency: results must match the sequential oracle exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BGPQ, SequentialPQ
from repro.errors import CapacityError

from .conftest import make_pq, run_single, small_ctx


def test_insert_then_delete_roundtrip():
    pq = make_pq(k=8)
    keys = np.array([5, 3, 9, 1])
    (got,) = run_single(pq, [("insert", keys), ("deletemin", 4)])
    assert list(got) == [1, 3, 5, 9]
    assert len(pq) == 0


def test_deletemin_on_empty_returns_nothing():
    pq = make_pq()
    (got,) = run_single(pq, [("deletemin", 5)])
    assert got.size == 0


def test_insert_empty_batch_is_noop():
    pq = make_pq()
    run_single(pq, [("insert", np.array([], dtype=np.int64))])
    assert len(pq) == 0


def test_insert_oversized_batch_rejected():
    pq = make_pq(k=4)
    with pytest.raises(ValueError):
        list(pq.insert_op(np.arange(5)))


def test_deletemin_invalid_count_rejected():
    pq = make_pq(k=4)
    with pytest.raises(ValueError):
        list(pq.deletemin_op(0))
    with pytest.raises(ValueError):
        list(pq.deletemin_op(5))


def test_partial_deletes_are_sorted_and_minimal():
    pq = make_pq(k=8)
    (a, b, c) = run_single(
        pq,
        [
            ("insert", [50, 10, 40]),
            ("insert", [30, 20]),
            ("deletemin", 2),
            ("deletemin", 2),
            ("deletemin", 8),
        ],
    )
    assert list(a) == [10, 20]
    assert list(b) == [30, 40]
    assert list(c) == [50]


def test_duplicate_keys_preserved():
    pq = make_pq(k=8)
    (got,) = run_single(pq, [("insert", [7, 7, 7]), ("insert", [7]), ("deletemin", 8)])
    assert list(got) == [7, 7, 7, 7]


def test_drain_more_than_present():
    pq = make_pq(k=8)
    (got,) = run_single(pq, [("insert", [2, 1]), ("deletemin", 8)])
    assert list(got) == [1, 2]
    assert len(pq) == 0


def test_interleaved_insert_delete_matches_oracle():
    pq = make_pq(k=8)
    oracle = SequentialPQ()
    rng = np.random.default_rng(3)
    script = []
    for _ in range(200):
        if rng.random() < 0.6:
            batch = rng.integers(0, 1000, size=int(rng.integers(1, 9))).tolist()
            script.append(("insert", batch))
        else:
            script.append(("deletemin", int(rng.integers(1, 9))))
    results = iter(run_single(pq, script))
    for kind, arg in script:
        if kind == "insert":
            oracle.insert(arg)
        else:
            expect = oracle.deletemin(arg)
            got = next(results)
            assert np.array_equal(got, expect)
    assert np.array_equal(np.sort(pq.snapshot_keys()), oracle.snapshot_keys())


def test_heapify_builds_multilevel_heap():
    pq = make_pq(k=4)
    keys = np.arange(64)[::-1].copy()  # descending worst case
    script = [("insert", keys[i : i + 4]) for i in range(0, 64, 4)]
    run_single(pq, script)
    assert pq.store.heap_size > 4  # several tree levels exist
    assert pq.check_invariants() == []
    (got,) = run_single(pq, [("deletemin", 4)])
    assert list(got) == [0, 1, 2, 3]


def test_buffer_batches_small_inserts():
    pq = make_pq(k=16)
    # first insert fills the empty root; the next 14 single keys are
    # absorbed by the partial buffer — no heapify happens at all
    script = [("insert", [i]) for i in range(15)]
    run_single(pq, script)
    assert pq.stats["insert_heapify"] == 0
    assert pq.stats["partial_insert"] == 15


def test_buffer_overflow_triggers_single_heapify():
    pq = make_pq(k=4)
    # k=4: first insert -> root; next 3 single keys -> buffer; one more
    # overflows and triggers exactly one heapify
    script = [("insert", [100 + i]) for i in range(4 + 4)]
    run_single(pq, script)
    assert pq.stats["insert_heapify"] >= 1
    assert pq.check_invariants() == []


def test_capacity_error_when_heap_full():
    ctx = small_ctx()
    pq = BGPQ(ctx, node_capacity=4, max_keys=8)  # 3 nodes max
    script = [("insert", np.arange(i * 4, i * 4 + 4)) for i in range(8)]
    with pytest.raises(Exception) as exc:
        run_single(pq, script)
    # surfaced through the simulator as a wrapped CapacityError
    assert isinstance(getattr(exc.value, "original", exc.value), CapacityError)


def test_invariants_hold_after_every_phase():
    pq = make_pq(k=8)
    rng = np.random.default_rng(11)
    run_single(pq, [("insert", rng.integers(0, 10**6, 8)) for _ in range(32)])
    assert pq.check_invariants() == []
    run_single(pq, [("deletemin", 8) for _ in range(16)])
    assert pq.check_invariants() == []


def test_stats_track_fast_paths():
    pq = make_pq(k=8)
    run_single(pq, [("insert", [1, 2, 3]), ("insert", [4]), ("deletemin", 1)])
    assert pq.stats["partial_insert"] >= 1
    assert pq.stats["partial_delete"] >= 1


@given(
    st.lists(
        st.one_of(
            st.lists(st.integers(0, 2**30), min_size=1, max_size=8).map(
                lambda ks: ("insert", ks)
            ),
            st.integers(1, 8).map(lambda c: ("deletemin", c)),
        ),
        max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_matches_oracle(script):
    pq = make_pq(k=8)
    oracle = SequentialPQ()
    results = iter(run_single(pq, script))
    for kind, arg in script:
        if kind == "insert":
            oracle.insert(arg)
        else:
            assert np.array_equal(next(results), oracle.deletemin(arg))
    assert pq.check_invariants() == []
    assert np.array_equal(np.sort(pq.snapshot_keys()), oracle.snapshot_keys())
