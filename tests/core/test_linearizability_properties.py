"""Property-based tests for the linearizability checker itself.

The checker is test infrastructure — if it silently accepted illegal
histories, the whole §5 verification story would be hollow.  These
properties pin it from both sides: every history generated *from* a
legal sequential run must pass, and systematic corruptions of legal
histories must fail.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SequentialPQ
from repro.core.linearizability import find_linearization, is_linearizable
from repro.sim import OpRecord


def history_from_sequential_run(script, jitter):
    """Execute ``script`` on the oracle, emit a history whose intervals
    are stretched by ``jitter`` (creating overlap) around the true
    sequential points — such a history is linearizable by construction."""
    oracle = SequentialPQ()
    ops = []
    t = 0.0
    for i, (kind, arg) in enumerate(script):
        j = jitter[i % len(jitter)] if jitter else 0.0
        invoke = t - j
        respond = t + 1.0 + j
        if kind == "insert":
            oracle.insert(arg)
            ops.append(OpRecord(i, f"t{i % 3}", "insert", tuple(arg), (), invoke, respond))
        else:
            got = oracle.deletemin(arg)
            ops.append(
                OpRecord(i, f"t{i % 3}", "deletemin", (arg,), tuple(got.tolist()),
                         invoke, respond)
            )
        t += 2.0
    return ops


script_strategy = st.lists(
    st.one_of(
        st.lists(st.integers(0, 50), min_size=1, max_size=3).map(lambda ks: ("insert", ks)),
        st.integers(1, 3).map(lambda c: ("deletemin", c)),
    ),
    min_size=1,
    max_size=10,
)


@given(script_strategy, st.lists(st.floats(0, 0.4), max_size=5))
@settings(max_examples=60, deadline=None)
def test_sequentially_generated_histories_pass(script, jitter):
    history = history_from_sequential_run(script, jitter)
    assert is_linearizable(history)


@given(script_strategy)
@settings(max_examples=40, deadline=None)
def test_witness_is_itself_a_legal_sequential_run(script):
    history = history_from_sequential_run(script, [0.3])
    witness = find_linearization(history)
    assert witness is not None
    # replay the witness on a fresh oracle: every result must match
    oracle = SequentialPQ()
    for op in witness:
        if op.kind == "insert":
            oracle.insert(op.args)
        else:
            got = oracle.deletemin(int(op.args[0]))
            assert tuple(got.tolist()) == op.result


@given(script_strategy, st.integers(0, 10**6))
@settings(max_examples=40, deadline=None)
def test_corrupted_delete_results_fail(script, extra_key):
    """Appending a never-inserted key to some deletemin must break
    linearizability (no witness can produce it)."""
    history = history_from_sequential_run(script, [])
    deletes = [i for i, op in enumerate(history) if op.kind == "deletemin"]
    if not deletes:
        return
    i = deletes[0]
    op = history[i]
    poisoned = tuple(sorted(op.result + (10**9 + extra_key,)))
    history[i] = OpRecord(
        op.op_id, op.thread, op.kind, (int(op.args[0]) + 1,), poisoned,
        op.invoke, op.respond,
    )
    assert not is_linearizable(history)


@given(script_strategy)
@settings(max_examples=30, deadline=None)
def test_swapping_disjoint_results_fails(script):
    """Swapping the results of two same-length deletes that returned
    different keys in a strictly sequential history must fail (real-time
    order pins which keys were available when).

    The same-length restriction is essential, not cosmetic: the swap
    rewrites each delete's count to match its new result, so swapping
    different-length results changes the *requests* too — and the
    swapped history can then be perfectly legal (e.g. insert [0,1];
    del(2)→(0,1); insert [0]; del(1)→(0,) swaps into del(1)→(0,);
    del(2)→(0,1), which is exactly what a sequential run returns).
    With equal lengths the requests are unchanged, and a sequential
    deletemin's result is uniquely determined by its prefix, so any
    differing result must be rejected."""
    history = history_from_sequential_run(script, [])
    deletes = [i for i, op in enumerate(history) if op.kind == "deletemin" and op.result]
    if len(deletes) < 2:
        return
    a, b = deletes[0], deletes[1]
    if len(history[a].result) != len(history[b].result):
        return
    if set(history[a].result) == set(history[b].result):
        return
    # swap results while keeping counts consistent with the swapped sets
    oa, ob = history[a], history[b]
    history[a] = OpRecord(oa.op_id, oa.thread, "deletemin", (len(ob.result),),
                          ob.result, oa.invoke, oa.respond)
    history[b] = OpRecord(ob.op_id, ob.thread, "deletemin", (len(oa.result),),
                          oa.result, ob.invoke, ob.respond)
    # the first delete now returns keys that were not minimal (or not
    # even inserted yet) at its point in real time
    assert not is_linearizable(history)
