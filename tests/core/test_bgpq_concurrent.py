"""BGPQ under real concurrency: conservation, invariants, collaboration.

Each test runs many simulated thread blocks through the engine with
seeded schedule exploration; correctness is asserted via whole-run key
conservation plus the structural invariants, and the collaboration
paths are checked to actually fire.
"""

import numpy as np
import pytest

from repro.core import BGPQ
from repro.sim import Engine

from .conftest import make_pq, small_ctx


def run_mixed(pq, n_threads, ops_per_thread, seed, p_insert=0.55, kmax=None):
    """Random mixed workload; returns (inserted, deleted) key arrays."""
    kmax = kmax or pq.k
    eng = Engine(seed=seed)
    inserted, deleted = [], []

    def worker(i):
        r = np.random.default_rng(seed * 1000 + i)
        for _ in range(ops_per_thread):
            if r.random() < p_insert:
                batch = r.integers(0, 1 << 20, size=int(r.integers(1, kmax + 1)))
                inserted.append(batch.copy())
                yield from pq.insert_op(batch)
            else:
                got = yield from pq.deletemin_op(int(r.integers(1, kmax + 1)))
                if got.size:
                    deleted.append(got)

    for i in range(n_threads):
        eng.spawn(worker(i), name=f"w{i}")
    eng.run()
    ins = np.concatenate(inserted) if inserted else np.empty(0, dtype=np.int64)
    dels = np.concatenate(deleted) if deleted else np.empty(0, dtype=np.int64)
    return ins, dels


@pytest.mark.parametrize("seed", range(8))
def test_conservation_under_concurrency(seed):
    pq = make_pq(k=16)
    ins, dels = run_mixed(pq, n_threads=6, ops_per_thread=25, seed=seed)
    remaining = pq.snapshot_keys()
    assert np.array_equal(
        np.sort(ins), np.sort(np.concatenate([dels, remaining]))
    ), f"keys lost or invented (seed {seed})"
    assert len(pq) == remaining.size
    assert pq.check_invariants() == []


def test_concurrent_insert_only_preserves_all_keys():
    pq = make_pq(k=16)
    eng = Engine(seed=5)
    batches = []

    def inserter(i):
        r = np.random.default_rng(i)
        for _ in range(20):
            b = r.integers(0, 10**6, size=16)
            batches.append(b.copy())
            yield from pq.insert_op(b)

    for i in range(8):
        eng.spawn(inserter(i))
    eng.run()
    expect = np.sort(np.concatenate(batches))
    assert np.array_equal(np.sort(pq.snapshot_keys()), expect)
    assert pq.check_invariants() == []


def test_concurrent_delete_returns_each_key_once():
    pq = make_pq(k=16)
    keys = np.arange(16 * 40)
    eng = Engine(seed=1)

    def inserter():
        for i in range(0, keys.size, 16):
            yield from pq.insert_op(keys[i : i + 16])

    eng.spawn(inserter())
    eng.run()

    eng2 = Engine(seed=2)
    out = []

    def deleter(i):
        while True:
            got = yield from pq.deletemin_op(16)
            if got.size == 0:
                return
            out.append(got)

    for i in range(6):
        eng2.spawn(deleter(i))
    eng2.run()
    assert np.array_equal(np.sort(np.concatenate(out)), keys)


def test_collaboration_steals_fire_under_contention():
    """With concurrent inserts+deletes, the TARGET/MARKED protocol must
    actually trigger across schedule seeds."""
    total = 0
    for seed in range(10):
        pq = make_pq(k=16)
        run_mixed(pq, n_threads=8, ops_per_thread=20, seed=seed)
        total += pq.stats["collab_steals"]
        assert pq.stats["collab_steals"] == pq.stats["collab_fills"]
    assert total > 0


def test_collaboration_disabled_still_correct():
    for seed in range(6):
        pq = make_pq(k=16, collaboration=False)
        ins, dels = run_mixed(pq, n_threads=6, ops_per_thread=20, seed=seed)
        remaining = pq.snapshot_keys()
        assert np.array_equal(np.sort(ins), np.sort(np.concatenate([dels, remaining])))
        assert pq.stats["collab_steals"] == 0
        assert pq.check_invariants() == []


def test_deleters_get_globally_small_keys_midstream():
    """After a quiescent fill, a single deletemin must return the true
    global minimum batch even with other deleters racing."""
    pq = make_pq(k=16)
    keys = np.random.default_rng(0).permutation(16 * 32)
    eng = Engine(seed=3)

    def filler():
        for i in range(0, keys.size, 16):
            yield from pq.insert_op(keys[i : i + 16])

    eng.spawn(filler())
    eng.run()

    eng2 = Engine(seed=4)
    firsts = []

    def deleter():
        got = yield from pq.deletemin_op(16)
        firsts.append(got)

    for _ in range(4):
        eng2.spawn(deleter())
    eng2.run()
    got = np.sort(np.concatenate(firsts))
    assert np.array_equal(got, np.arange(64))  # the 64 smallest overall


def test_root_lock_contention_is_recorded():
    pq = make_pq(k=16)
    run_mixed(pq, n_threads=8, ops_per_thread=10, seed=0)
    root_lock = pq.store.root_lock
    assert root_lock.acquisitions > 0
    assert root_lock.contended_acquisitions > 0


def test_makespan_scales_down_with_more_blocks():
    """More thread blocks => more task parallelism => shorter simulated
    time for the same total work (until contention; small case here)."""

    def run(n_threads, seed=0):
        pq = BGPQ(small_ctx(), node_capacity=64, max_keys=1 << 16)
        eng = Engine(seed=seed)
        work = np.random.default_rng(0).integers(0, 10**6, size=(32, 64))

        def worker(i):
            for j in range(i, 32, n_threads):
                yield from pq.insert_op(work[j])

        for i in range(n_threads):
            eng.spawn(worker(i))
        return eng.run()

    t1 = run(1)
    t8 = run(8)
    assert t8 < t1
