"""Backend differential: every (kernels, parallel) mode is one queue.

The fast paths — the fused C heapify and the thread-pool presort — must
be *observationally invisible*: byte-identical outputs, identical
exported heap state, identical simulated-time accounting (the fused
kernels replay their charge log through the same Fraction arithmetic
the reference path uses), identical stats counters.  These tests drive
random workloads through every backend/parallel combination the host
offers and compare against both the numpy-serial queue and the
SequentialPQ oracle, with HeapAuditor checking structural invariants
along the way.
"""

import numpy as np
import pytest

from repro.core import HeapAuditor, SequentialPQ
from repro.core.native import NativeBGPQ
from repro.device.kernels import GpuContext
from repro.primitives import kernels

MODES = [("numpy", "off")]
MODES += [(n, "off") for n in kernels.available_backends() if n != "numpy"]
MODES += [(n, "threads") for n in kernels.available_backends() if n != "numpy"]


def _workload(rng, k, ops):
    """A reproducible mixed script: (op, arg) tuples."""
    script = []
    for _ in range(ops):
        if rng.random() < 0.6:
            n = int(rng.integers(1, k + 1))
            script.append(("insert", rng.integers(-1000, 1000, size=n)))
        else:
            script.append(("delete", int(rng.integers(1, k + 1))))
    return script


def _drive(pq, script, k):
    outs = []
    for op, arg in script:
        if op == "insert":
            pq.insert(np.asarray(arg, dtype=np.int64))
        else:
            got = pq.deletemin(arg)
            keys = got[0] if isinstance(got, tuple) else got
            outs.append(np.asarray(keys).tolist())
    return outs


@pytest.mark.parametrize("kern,par", MODES)
@pytest.mark.parametrize("k", [4, 16, 64])
def test_backend_matches_numpy_serial_and_oracle(kern, par, k):
    rng = np.random.default_rng(k * 1001)
    script = _workload(rng, k, 60)

    ref = NativeBGPQ(k, storage="arena", kernels="numpy")
    ref_outs = _drive(ref, script, k)

    oracle = SequentialPQ()
    for op, arg in script:
        if op == "insert":
            oracle.insert(np.asarray(arg, dtype=np.int64))
        else:
            oracle.deletemin(arg)

    with NativeBGPQ(
        k, storage="arena", kernels=kern, parallel=par, workers=2
    ) as pq:
        outs = _drive(pq, script, k)
        assert outs == ref_outs
        assert len(pq) == len(ref) == len(oracle)
        assert pq.stats == ref.stats
        state, ref_state = pq.export_state(), ref.export_state()
        assert state.keys() == ref_state.keys()
        for key in state:
            assert np.array_equal(state[key], ref_state[key]), key
        report = HeapAuditor(pq).audit(context=f"{kern}/{par}")
        assert report.ok, report.problems
        # drain: the remaining multiset must match the oracle's exactly
        drained = []
        while len(pq):
            got = pq.deletemin(k)
            keys = got[0] if isinstance(got, tuple) else got
            drained.extend(np.asarray(keys).tolist())
        assert drained == sorted(drained)
        assert drained == oracle.deletemin(len(oracle)).tolist()


@pytest.mark.parametrize("kern,par", MODES)
def test_sim_time_identical_across_backends(kern, par):
    """Charge-log replay must reproduce the reference Fractions exactly."""
    k = 8
    ctx = GpuContext.default(blocks=8, threads_per_block=64)
    rng = np.random.default_rng(42)
    script = _workload(rng, k, 50)

    ref = NativeBGPQ(k, ctx=ctx, storage="arena", kernels="numpy")
    _drive(ref, script, k)
    with NativeBGPQ(
        k, ctx=ctx, storage="arena", kernels=kern, parallel=par, workers=2
    ) as pq:
        _drive(pq, script, k)
        assert pq.sim_time_ns_exact == ref.sim_time_ns_exact


@pytest.mark.parametrize("kern,par", MODES)
def test_payload_rides_identically(kern, par):
    k = 8
    rng = np.random.default_rng(7)
    ref = NativeBGPQ(k, storage="arena", payload_width=2, kernels="numpy")
    with NativeBGPQ(
        k, storage="arena", payload_width=2, kernels=kern, parallel=par,
        workers=2,
    ) as pq:
        for _ in range(25):
            n = int(rng.integers(1, k + 1))
            keys = rng.integers(-50, 50, size=n).astype(np.int64)
            pay = rng.integers(0, 1 << 20, size=(n, 2)).astype(np.int64)
            ref.insert(keys, pay)
            pq.insert(keys, pay)
        while len(ref):
            rk, rp = ref.deletemin(k)
            gk, gp = pq.deletemin(k)
            assert np.array_equal(rk, gk)
            assert np.array_equal(rp, gp)


@pytest.mark.parametrize("kern,par", MODES)
def test_bulk_and_build_identical(kern, par):
    k = 16
    rng = np.random.default_rng(3)
    records = rng.integers(-10_000, 10_000, size=5000).astype(np.int64)
    for method in ("insert_bulk", "build"):
        ref = NativeBGPQ(k, storage="arena", kernels="numpy")
        getattr(ref, method)(records)
        with NativeBGPQ(
            k, storage="arena", kernels=kern, parallel=par, workers=2,
            parallel_threshold=512,  # force the pool path on small input
        ) as pq:
            getattr(pq, method)(records)
            assert len(pq) == len(ref)
            state, ref_state = pq.export_state(), ref.export_state()
            for key in state:
                assert np.array_equal(state[key], ref_state[key]), (method, key)


def test_parallel_request_degrades_gracefully():
    """parallel="threads" over interpreter-bound kernels runs serial."""
    with NativeBGPQ(8, kernels="numpy", parallel="threads") as pq:
        assert pq.effective_parallel == "off"
        pq.insert(np.arange(8, dtype=np.int64))
        got = pq.deletemin(8)
        keys = got[0] if isinstance(got, tuple) else got
        assert np.asarray(keys).tolist() == list(range(8))


def test_kernel_provenance_reported():
    with NativeBGPQ(8, kernels="numpy") as pq:
        info = pq.kernel_provenance()
        assert info["backend"] == "numpy"
        assert info["parallel"] == "off"
