"""(key, value) record support in the concurrent BGPQ.

The paper's ADT stores (key, value) pairs (§2); these tests verify
payload rows travel with their keys through every concurrent path —
partial inserts, buffer spills, heapify SORT_SPLITs, refills and the
TARGET/MARKED collaboration.
"""

import numpy as np
import pytest

from repro.core import BGPQ
from repro.device import GpuContext
from repro.errors import ConfigurationError
from repro.sim import Engine


def make_pq(k=16, width=2):
    ctx = GpuContext.default(blocks=4, threads_per_block=64)
    return BGPQ(ctx, node_capacity=k, max_keys=1 << 14, payload_width=width)


def run_one(pq, script):
    """Single-threaded op script; returns deletemin (keys, payload) list."""
    results = []

    def t():
        for kind, *args in script:
            if kind == "insert":
                yield from pq.insert_op(np.asarray(args[0]), payload=args[1])
            else:
                got = yield from pq.deletemin_op(args[0], with_payload=True)
                results.append(got)

    eng = Engine(seed=0)
    eng.spawn(t())
    eng.run()
    return results


def test_payload_roundtrip():
    pq = make_pq()
    ((keys, payload),) = run_one(
        pq,
        [
            ("insert", [30, 10], [[3, 33], [1, 11]]),
            ("insert", [20], [[2, 22]]),
            ("deletemin", 3),
        ],
    )
    assert list(keys) == [10, 20, 30]
    assert payload.tolist() == [[1, 11], [2, 22], [3, 33]]


def test_default_payload_is_zeros():
    pq = make_pq(width=1)
    ((keys, payload),) = run_one(pq, [("insert", [5], None), ("deletemin", 1)])
    assert payload.tolist() == [[0]]


def test_payload_shape_validation():
    pq = make_pq(width=2)
    with pytest.raises(ValueError):
        list(pq.insert_op(np.array([1]), payload=np.zeros((1, 3))))


def test_negative_width_rejected():
    with pytest.raises(ConfigurationError):
        BGPQ(node_capacity=8, payload_width=-1)


def test_deletemin_without_payload_flag_returns_keys():
    pq = make_pq(width=1)
    eng = Engine()
    out = []

    def t():
        yield from pq.insert_op(np.array([4, 2]), payload=[[40], [20]])
        got = yield from pq.deletemin_op(2)
        out.append(got)

    eng.spawn(t())
    eng.run()
    assert isinstance(out[0], np.ndarray)
    assert list(out[0]) == [2, 4]


def test_payload_follows_keys_through_deep_heapify():
    """Key-derived payloads must stay aligned after many spills and
    refills (exercises every SORT_SPLIT site)."""
    pq = make_pq(k=8, width=1)
    rng = np.random.default_rng(0)
    eng = Engine(seed=1)

    def t():
        for _ in range(80):
            keys = rng.integers(0, 10**6, size=int(rng.integers(1, 9)))
            yield from pq.insert_op(keys, payload=(keys * 3).reshape(-1, 1))
            if rng.random() < 0.4:
                keys_out, pay = yield from pq.deletemin_op(
                    int(rng.integers(1, 9)), with_payload=True
                )
                assert np.array_equal(pay.ravel(), keys_out * 3)
        while len(pq):
            keys_out, pay = yield from pq.deletemin_op(8, with_payload=True)
            assert np.array_equal(pay.ravel(), keys_out * 3)

    eng.spawn(t())
    eng.run()
    assert pq.check_invariants() == []


@pytest.mark.parametrize("seed", range(6))
def test_payload_consistency_under_concurrency(seed):
    """Concurrent workers with collaboration active: every delivered
    payload row must still match its key."""
    pq = make_pq(k=16, width=1)
    eng = Engine(seed=seed)
    bad = []

    def worker(i):
        r = np.random.default_rng(seed * 100 + i)
        for _ in range(20):
            if r.random() < 0.55:
                keys = r.integers(0, 1 << 20, size=int(r.integers(1, 17)))
                yield from pq.insert_op(keys, payload=(keys * 7).reshape(-1, 1))
            else:
                keys_out, pay = yield from pq.deletemin_op(
                    int(r.integers(1, 17)), with_payload=True
                )
                if not np.array_equal(pay.ravel(), keys_out * 7):
                    bad.append((keys_out, pay))

    for i in range(6):
        eng.spawn(worker(i), name=f"w{i}")
    eng.run()
    assert not bad, f"payload/key misalignment: {bad[:2]}"
    # drain remaining and check too
    eng2 = Engine(seed=seed + 1)

    def drainer():
        while True:
            keys_out, pay = yield from pq.deletemin_op(16, with_payload=True)
            if keys_out.size == 0:
                return
            assert np.array_equal(pay.ravel(), keys_out * 7)

    eng2.spawn(drainer())
    eng2.run()
    assert len(pq) == 0
