"""Arena vs list storage differential: bit-identical behaviour.

The fused in-place SORT_SPLIT path (``storage="arena"``) must be
observationally indistinguishable from the allocate-per-merge reference
(``storage="list"``): same deleted batches, same final contents, same
simulated schedules (the Compute charges are value-identical, so two
engines with the same seed interleave identically), and same recovery
behaviour under injected faults.
"""

import numpy as np
import pytest

from repro.campaign import run_one
from repro.core import BGPQ, HeapAuditor
from repro.errors import SimThreadError, ThreadCrashed
from repro.sim import Engine, Label
from repro.sim.faults import CRASHPOINT

STORAGES = ("arena", "list")


def _make(storage, k=8, payload_width=0):
    return BGPQ(
        node_capacity=k,
        max_keys=1 << 12,
        payload_width=payload_width,
        storage=storage,
    )


def _mixed_run(storage, seed, payload_width=0, threads=4, pairs=10, k=8):
    """Concurrent insert/delete workload; returns everything observable."""
    pq = _make(storage, k=k, payload_width=payload_width)
    rng = np.random.default_rng(seed)
    scripts = [
        [rng.integers(0, 50_000, size=k).astype(np.int64) for _ in range(pairs)]
        for _ in range(threads)
    ]
    outputs = [[] for _ in range(threads)]

    def worker(tid):
        for batch in scripts[tid]:
            if payload_width:
                pay = np.tile(batch.reshape(-1, 1), (1, payload_width))
                yield from pq.insert_op(batch, pay)
            else:
                yield from pq.insert_op(batch)
            got = yield from pq.deletemin_op(k)
            outputs[tid].append(got)

    eng = Engine(seed=seed)
    for tid in range(threads):
        eng.spawn(worker(tid), name=f"w{tid}")
    eng.run()

    flat = []
    for tid in range(threads):
        for got in outputs[tid]:
            keys = got[0] if isinstance(got, tuple) else got
            flat.append(np.asarray(keys).tolist())
    return {
        "makespan": eng.now,
        "outputs": flat,
        "remaining": np.sort(pq.snapshot_keys()).tolist(),
        "len": len(pq),
        "stats": dict(pq.stats),
        "pq": pq,
    }


# ---------------------------------------------------------------------------
# concurrent differential: identical schedules and results
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("payload_width", [0, 2])
@pytest.mark.parametrize("seed", [0, 1, 7, 23])
def test_backends_bit_identical_under_concurrency(seed, payload_width):
    arena = _mixed_run("arena", seed, payload_width)
    ref = _mixed_run("list", seed, payload_width)
    assert arena["makespan"] == ref["makespan"]
    assert arena["outputs"] == ref["outputs"]
    assert arena["remaining"] == ref["remaining"]
    assert arena["len"] == ref["len"]
    assert arena["stats"] == ref["stats"]
    for run in (arena, ref):
        report = HeapAuditor(run["pq"]).audit(context=f"{seed}/{payload_width}")
        assert report.ok, report.problems


def test_backends_identical_single_thread_partial_batches():
    """Partial batches exercise the buffer absorb/detach paths."""
    for storage in STORAGES:
        pq = _make(storage)
        rng = np.random.default_rng(99)

        def script(pq=pq, rng=rng):
            for _ in range(30):
                n = int(rng.integers(1, pq.k + 1))
                yield from pq.insert_op(rng.integers(0, 9_999, size=n).astype(np.int64))
            while len(pq):
                got = yield from pq.deletemin_op(min(pq.k, len(pq)))
                drained.append(np.asarray(got).tolist())

        drained = []
        eng = Engine(seed=3)
        eng.spawn(script())
        eng.run()
        if storage == "arena":
            arena_out, arena_span = drained, eng.now
        else:
            assert drained == arena_out
            assert eng.now == arena_span


# ---------------------------------------------------------------------------
# fault-injection differential: rollback restores arena rows exactly
# ---------------------------------------------------------------------------
def _row_snapshot(pq):
    """Raw arena row contents for every live node (keys up to count)."""
    store = pq.store
    return [
        (i, n.state, n.count, n.keys().tolist())
        for i, n in enumerate(store.nodes)
    ]


def _crash_at(gen, n):
    seen = 0
    send = None
    throw = None
    while True:
        try:
            if throw is not None:
                exc, throw = throw, None
                eff = gen.throw(exc)
            else:
                eff = gen.send(send)
        except StopIteration as stop:
            return ("done", stop.value)
        send = None
        if eff.__class__ is Label and eff.tag == CRASHPOINT:
            seen += 1
            if seen == n:
                throw = ThreadCrashed("surgical", seen)
                continue
        send = yield eff


def _populate(storage, k=4):
    pq = BGPQ(node_capacity=k, max_keys=1 << 12, storage=storage)
    rng = np.random.default_rng(1234)
    batches = [rng.integers(0, 10_000, size=k).astype(np.int64) for _ in range(5)]

    def seeder():
        for b in batches:
            yield from pq.insert_op(b)

    eng = Engine(seed=0)
    eng.spawn(seeder())
    eng.run()
    return pq


@pytest.mark.parametrize("op", ["insert", "delete"])
def test_crash_rollback_restores_arena_rows(op):
    """OpGuard's undo callbacks must rewrite the mutated arena rows —
    snapshot-by-reference would silently fail for in-place storage."""
    rng = np.random.default_rng(7)
    n = 1
    while True:
        pq = _populate("arena")
        before = _row_snapshot(pq)
        before_buf = pq.pbuffer.tolist()
        if op == "insert":
            gen = pq.insert_op(rng.integers(0, 10_000, size=pq.k).astype(np.int64))
        else:
            gen = pq.deletemin_op(pq.k)
        eng = Engine(seed=0)
        eng.spawn(_crash_at(gen, n), name="surgical")
        crashed = False
        try:
            eng.run()
        except SimThreadError as err:
            assert isinstance(err.original, ThreadCrashed)
            crashed = True
        if not crashed:
            break
        assert _row_snapshot(pq) == before, f"crashpoint {n} leaked row state"
        assert pq.pbuffer.tolist() == before_buf
        assert HeapAuditor(pq).audit(context=f"crashpoint {n}").ok
        n += 1
    assert n > 3  # swept several crashpoints


@pytest.mark.parametrize("plan", ["crash", "timeout", "mixed"])
def test_fault_campaign_cell_matches_list_backend(plan):
    """Same seed, same plan: the two backends survive injected faults
    with identical schedules, fault counts, and recovery outcomes."""
    for seed in range(4):
        a = run_one("bgpq", plan, seed=seed)
        b = run_one("bgpq-list", plan, seed=seed)
        assert (a.status, a.injected, a.crashed_threads, a.aborted_ops,
                a.rollbacks, a.makespan_ns) == (
            b.status, b.injected, b.crashed_threads, b.aborted_ops,
            b.rollbacks, b.makespan_ns), (plan, seed)
        assert a.status == "survived"
