"""Bottom-up insertion variant tests (§3.3 experiment).

Contract: conservation always; exact minimality for phase-separated
workloads; performance similar to top-down (asserted loosely here, and
measured in benchmarks/test_ablations.py).
"""

import numpy as np
import pytest

from repro.core import BGPQ, BGPQBottomUp, SequentialPQ
from repro.device import GpuContext
from repro.sim import Engine


def make_pq(k=16, **kw):
    ctx = GpuContext.default(blocks=4, threads_per_block=64)
    return BGPQBottomUp(ctx, node_capacity=k, max_keys=1 << 14, **kw)


def run_single(pq, script, seed=0):
    results = []

    def t():
        for kind, arg in script:
            if kind == "insert":
                yield from pq.insert_op(np.asarray(arg))
            else:
                results.append((yield from pq.deletemin_op(arg)))

    eng = Engine(seed=seed)
    eng.spawn(t())
    eng.run()
    return results


def test_sequential_matches_oracle():
    pq = make_pq(k=8)
    oracle = SequentialPQ()
    rng = np.random.default_rng(5)
    script = []
    for _ in range(150):
        if rng.random() < 0.6:
            script.append(("insert", rng.integers(0, 10**6, int(rng.integers(1, 9))).tolist()))
        else:
            script.append(("deletemin", int(rng.integers(1, 9))))
    results = iter(run_single(pq, script))
    for kind, arg in script:
        if kind == "insert":
            oracle.insert(arg)
        else:
            assert np.array_equal(next(results), oracle.deletemin(arg))
    assert pq.check_invariants() == []


def test_percolation_happens():
    pq = make_pq(k=4)
    # descending batches force percolation: later (smaller) batches
    # must bubble past earlier (larger) nodes
    script = [("insert", list(range(100 - 4 * i, 104 - 4 * i))) for i in range(16)]
    run_single(pq, script)
    assert pq.stats["percolate_levels"] > 0
    assert pq.check_invariants() == []
    (got,) = run_single(pq, [("deletemin", 4)])
    assert list(got) == [40, 41, 42, 43]


@pytest.mark.parametrize("seed", range(8))
def test_concurrent_phases_exact(seed):
    """Insert phase then delete phase: results must be exactly sorted
    (quiescence between phases restores the full heap property)."""
    pq = make_pq(k=8)
    keys = np.random.default_rng(seed).permutation(8 * 40)
    eng = Engine(seed=seed)

    def inserter(i):
        mine = keys[i::4]
        for j in range(0, mine.size, 8):
            yield from pq.insert_op(mine[j : j + 8])

    for i in range(4):
        eng.spawn(inserter(i))
    eng.run()
    assert pq.check_invariants() == []
    assert np.array_equal(np.sort(pq.snapshot_keys()), np.arange(8 * 40))

    eng2 = Engine(seed=seed + 100)
    out = []

    def deleter(i):
        while True:
            got = yield from pq.deletemin_op(8)
            if got.size == 0:
                return
            out.append(got)

    for i in range(4):
        eng2.spawn(deleter(i))
    eng2.run()
    assert np.array_equal(np.sort(np.concatenate(out)), np.arange(8 * 40))


@pytest.mark.parametrize("seed", range(8))
def test_mixed_concurrency_conserves_keys(seed):
    """Overlapping inserts+deletes: conservation (the Hunt-style
    contract — exact minimality is not promised mid-flight)."""
    pq = make_pq(k=8)
    eng = Engine(seed=seed)
    inserted, deleted = [], []

    def worker(i):
        r = np.random.default_rng(seed * 77 + i)
        for _ in range(20):
            if r.random() < 0.55:
                b = r.integers(0, 1 << 20, size=int(r.integers(1, 9)))
                inserted.append(b.copy())
                yield from pq.insert_op(b)
            else:
                got = yield from pq.deletemin_op(int(r.integers(1, 9)))
                if got.size:
                    deleted.append(got)

    for i in range(5):
        eng.spawn(worker(i))
    eng.run()
    ins = np.sort(np.concatenate(inserted))
    rest = pq.snapshot_keys()
    outs = np.concatenate(deleted) if deleted else np.empty(0, np.int64)
    assert np.array_equal(ins, np.sort(np.concatenate([outs, rest])))


def test_performance_similar_to_top_down():
    """The paper's §3.3 claim: similar performance to top-down."""
    keys = np.random.default_rng(0).integers(0, 1 << 30, size=64 * 64)

    def run(cls):
        ctx = GpuContext.default(blocks=8, threads_per_block=128)
        pq = cls(ctx, node_capacity=64, max_keys=1 << 16)
        eng = Engine(seed=0)

        def inserter(i):
            mine = keys[i::8]
            for j in range(0, mine.size, 64):
                yield from pq.insert_op(mine[j : j + 64])

        for i in range(8):
            eng.spawn(inserter(i))
        return eng.run()

    t_td = run(BGPQ)
    t_bu = run(BGPQBottomUp)
    assert 0.3 <= t_bu / t_td <= 3.0, f"top-down {t_td}, bottom-up {t_bu}"


def test_no_collaboration_stats_in_bottom_up():
    pq = make_pq(k=8)
    script = [("insert", list(range(i, i + 8))) for i in range(0, 32, 8)]
    run_single(pq, script + [("deletemin", 8)])
    assert pq.stats["collab_steals"] == 0
