"""The k-relaxed correctness spec (check_k_relaxed / assert_k_relaxed)."""

from dataclasses import dataclass, field

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KRelaxedReport, assert_k_relaxed, check_k_relaxed
from repro.core.linearizability import LinearizabilityError, _run_offsets


@dataclass
class Op:
    kind: str
    args: tuple = ()
    result: tuple = field(default_factory=tuple)


def ins(*keys):
    return Op("insert", args=tuple(keys))


def dele(count, *returned):
    return Op("deletemin", args=(count,), result=tuple(returned))


# ---------------------------------------------------------------------------
def test_exact_history_reports_minimal_k_one():
    hist = [ins(5, 1, 3), dele(2, 1, 3), ins(2), dele(2, 2, 5)]
    rep = check_k_relaxed(hist)
    assert rep.ok and rep.max_rank == 0 and rep.minimal_k == 1
    assert rep.deletes == 2 and rep.keys_deleted == 4


def test_batch_scored_sequentially_not_jointly():
    # deletemin(3) returning the exact 3 smallest scores rank 0 each,
    # even though the 2nd/3rd keys had smaller keys outstanding at the
    # batch's start
    hist = [ins(1, 2, 3, 4), dele(3, 1, 2, 3)]
    rep = check_k_relaxed(hist)
    assert rep.max_rank == 0


def test_rank_counts_strictly_smaller_outstanding():
    # returning 30 while {10, 20} outstanding: rank 2
    hist = [ins(10, 20, 30), dele(1, 30)]
    rep = check_k_relaxed(hist)
    assert rep.ok and rep.max_rank == 2 and rep.minimal_k == 3
    assert check_k_relaxed(hist, k=3).rank_violations == 0
    assert check_k_relaxed(hist, k=2).rank_violations == 1


def test_duplicates_rank_zero_when_equal_key_returned():
    # two equal keys: returning either scores rank 0 (no strictly
    # smaller key outstanding)
    hist = [ins(7, 7, 9), dele(1, 7), dele(1, 7), dele(1, 9)]
    rep = check_k_relaxed(hist)
    assert rep.ok and rep.max_rank == 0


def test_duplicate_batch_return_consumes_run():
    hist = [ins(7, 7, 9), dele(3, 7, 7, 9)]
    rep = check_k_relaxed(hist)
    assert rep.ok and rep.max_rank == 0 and rep.keys_deleted == 3


def test_invented_key_is_structural_problem():
    hist = [ins(1, 2), dele(1, 99)]
    rep = check_k_relaxed(hist)
    assert not rep.ok
    assert any("not outstanding" in p for p in rep.problems)


def test_double_delete_is_structural_problem():
    hist = [ins(5), dele(1, 5), dele(1, 5)]
    rep = check_k_relaxed(hist)
    assert not rep.ok


def test_over_return_flagged():
    hist = [ins(1, 2, 3), dele(2, 1, 2, 3)]
    rep = check_k_relaxed(hist)
    assert any("asked 2, returned 3" in p for p in rep.problems)


def test_short_return_flagged_when_keys_available():
    hist = [ins(1, 2, 3), dele(3, 1)]
    rep = check_k_relaxed(hist)
    assert any("returned 1 keys" in p for p in rep.problems)


def test_short_return_fine_on_drained_queue():
    hist = [ins(1), dele(4, 1), dele(4)]
    rep = check_k_relaxed(hist)
    assert rep.ok


def test_unsorted_result_flagged_then_rescored():
    hist = [ins(1, 2), dele(2, 2, 1)]
    rep = check_k_relaxed(hist)
    assert any("not sorted" in p for p in rep.problems)
    # after re-sorting, the keys themselves are legal
    assert rep.keys_deleted == 2


def test_unknown_kind_flagged():
    rep = check_k_relaxed([Op("peek")])
    assert any("unknown kind" in p for p in rep.problems)


def test_empty_history():
    rep = check_k_relaxed([])
    assert rep.ok and rep.minimal_k == 1 and rep.ops == 0


def test_assert_k_relaxed_raises_with_context():
    hist = [ins(10, 20, 30), dele(1, 30)]
    with pytest.raises(LinearizabilityError, match="k-relaxed spec"):
        assert_k_relaxed(hist, k=1)
    rep = assert_k_relaxed(hist, k=3)
    assert isinstance(rep, KRelaxedReport)


def test_mean_rank_statistic():
    hist = [ins(10, 20), dele(1, 20), dele(1, 10)]
    rep = check_k_relaxed(hist)
    assert rep.mean_rank == pytest.approx(0.5)


def test_run_offsets():
    vals = np.array([1, 1, 2, 3, 3, 3], dtype=np.int64)
    assert _run_offsets(vals).tolist() == [0, 1, 0, 0, 1, 2]
    assert _run_offsets(np.empty(0, dtype=np.int64)).size == 0


# ---------------------------------------------------------------------------
@given(
    keys=st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                  max_size=60),
    j=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_j_relaxed_oracle_never_exceeds_j(keys, j, seed):
    """A queue that pops uniformly among the j smallest is (j)-relaxed.

    Simulate exactly that relaxation and assert the checker's measured
    minimal_k never exceeds j — the spec recognises genuine j-relaxed
    behaviour without false violations.
    """
    rng = np.random.default_rng(seed)
    outstanding = sorted(keys)
    hist = [ins(*keys)]
    while outstanding:
        idx = int(rng.integers(0, min(j, len(outstanding))))
        hist.append(dele(1, outstanding.pop(idx)))
    rep = check_k_relaxed(hist, k=j)
    assert rep.ok, rep.problems
    assert rep.minimal_k <= j
    assert rep.keys_deleted == len(keys)
