"""BatchNode unit tests."""

import numpy as np
import pytest

from repro.core.node import AVAIL, EMPTY, MARKED, TARGET, STATE_NAMES, BatchNode


def test_new_node_is_empty():
    n = BatchNode(8)
    assert n.empty and not n.full
    assert n.count == 0
    assert n.state == EMPTY


def test_invalid_capacity():
    with pytest.raises(ValueError):
        BatchNode(0)


def test_set_keys_and_views():
    n = BatchNode(4)
    n.set_keys(np.array([1, 2, 3]))
    assert list(n.keys()) == [1, 2, 3]
    assert n.count == 3
    assert n.min_key() == 1
    assert n.max_key() == 3


def test_set_keys_overflow():
    n = BatchNode(2)
    with pytest.raises(ValueError):
        n.set_keys(np.array([1, 2, 3]))


def test_full_flag():
    n = BatchNode(2)
    n.set_keys(np.array([1, 2]))
    assert n.full


def test_min_max_on_empty_raise():
    n = BatchNode(4)
    with pytest.raises(IndexError):
        n.min_key()
    with pytest.raises(IndexError):
        n.max_key()


def test_take_front():
    n = BatchNode(4)
    n.set_keys(np.array([1, 2, 3, 4]))
    got = n.take_front(2)
    assert list(got) == [1, 2]
    assert list(n.keys()) == [3, 4]
    assert n.count == 2


def test_take_front_all():
    n = BatchNode(3)
    n.set_keys(np.array([5, 6]))
    got = n.take_front(2)
    assert list(got) == [5, 6]
    assert n.empty


def test_take_front_too_many():
    n = BatchNode(3)
    n.set_keys(np.array([1]))
    with pytest.raises(ValueError):
        n.take_front(2)


def test_take_front_returns_copy():
    n = BatchNode(4)
    n.set_keys(np.array([1, 2, 3]))
    got = n.take_front(1)
    n.set_keys(np.array([9, 9, 9]))
    assert list(got) == [1]


def test_clear():
    n = BatchNode(4)
    n.set_keys(np.array([1, 2]))
    n.clear()
    assert n.empty


def test_check_sorted():
    n = BatchNode(4)
    n.set_keys(np.array([1, 3, 2]))
    assert not n.check_sorted()
    n.set_keys(np.array([1, 2, 3]))
    assert n.check_sorted()


def test_states_distinct():
    assert len({AVAIL, EMPTY, TARGET, MARKED}) == 4
    assert set(STATE_NAMES) == {AVAIL, EMPTY, TARGET, MARKED}
