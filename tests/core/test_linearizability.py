"""Linearizability: checker unit tests + BGPQ history verification.

The checker is first validated on hand-built histories with known
verdicts, then BGPQ is driven concurrently across many schedule seeds
and every recorded history must admit a linearization — the mechanical
counterpart of the paper's §5 proof.
"""

import numpy as np
import pytest

from repro.baselines.interface import recorded_op
from repro.core import BGPQ
from repro.core.linearizability import (
    assert_linearizable,
    check_necessary_conditions,
    find_linearization,
    is_linearizable,
)
from repro.errors import LinearizabilityError
from repro.sim import Engine, HistoryRecorder, OpRecord, collect_history

from .conftest import make_pq


def op(op_id, kind, args, result, invoke, respond, thread="t"):
    return OpRecord(op_id, thread, kind, tuple(args), tuple(result), invoke, respond)


class TestCheckerUnit:
    def test_empty_history(self):
        assert is_linearizable([])

    def test_simple_sequential_history(self):
        h = [
            op(0, "insert", (5,), (), 0, 1),
            op(1, "deletemin", (1,), (5,), 2, 3),
        ]
        assert is_linearizable(h)

    def test_delete_before_any_insert_of_key_fails(self):
        h = [
            op(0, "deletemin", (1,), (5,), 0, 1),  # returns 5...
            op(1, "insert", (5,), (), 2, 3),  # ...inserted strictly later
        ]
        assert not is_linearizable(h)

    def test_overlapping_ops_can_reorder(self):
        # delete overlaps the insert, so the witness may order insert first
        h = [
            op(0, "insert", (5,), (), 0, 10),
            op(1, "deletemin", (1,), (5,), 1, 9),
        ]
        assert is_linearizable(h)

    def test_non_minimal_delete_fails(self):
        h = [
            op(0, "insert", (1, 2), (), 0, 1),
            op(1, "deletemin", (1,), (2,), 2, 3),  # 1 is smaller and present
        ]
        assert not is_linearizable(h)

    def test_short_return_only_legal_when_queue_could_be_empty(self):
        # empty-queue delete returning nothing is fine
        h = [op(0, "deletemin", (3,), (), 0, 1), op(1, "insert", (1,), (), 2, 3)]
        assert is_linearizable(h)
        # but returning 1 key while 2 were definitely present is not
        h2 = [
            op(0, "insert", (1, 2), (), 0, 1),
            op(1, "deletemin", (2,), (1,), 2, 3),
        ]
        assert not is_linearizable(h2)

    def test_double_delete_of_same_key_fails(self):
        h = [
            op(0, "insert", (7,), (), 0, 1),
            op(1, "deletemin", (1,), (7,), 2, 3),
            op(2, "deletemin", (1,), (7,), 4, 5),
        ]
        assert not is_linearizable(h)

    def test_concurrent_deletes_split_the_keys(self):
        h = [
            op(0, "insert", (1, 2, 3, 4), (), 0, 1),
            op(1, "deletemin", (2,), (1, 2), 2, 8),
            op(2, "deletemin", (2,), (3, 4), 2, 8),
        ]
        assert is_linearizable(h)

    def test_witness_respects_realtime_order(self):
        h = [
            op(0, "insert", (9,), (), 0, 1),
            op(1, "insert", (1,), (), 2, 3),
            op(2, "deletemin", (1,), (1,), 4, 5),
        ]
        w = find_linearization(h)
        assert w is not None
        ids = [o.op_id for o in w]
        assert ids.index(0) < ids.index(2)
        assert ids.index(1) < ids.index(2)

    def test_assert_raises_with_history_attached(self):
        h = [op(0, "deletemin", (1,), (5,), 0, 1)]
        with pytest.raises(LinearizabilityError) as exc:
            assert_linearizable(h)
        assert exc.value.history == h

    def test_search_budget_enforced(self):
        # pathological: many overlapping inserts of the same key
        h = [op(i, "insert", (1,), (), 0, 100) for i in range(25)] + [
            op(99, "deletemin", (1,), (2,), 0, 100)  # impossible result
        ]
        with pytest.raises(RuntimeError):
            find_linearization(h, max_states=100)


class TestNecessaryConditions:
    def test_clean_history_passes(self):
        h = [
            op(0, "insert", (1, 2), (), 0, 1),
            op(1, "deletemin", (2,), (1, 2), 2, 3),
        ]
        assert check_necessary_conditions(h) == []

    def test_invented_key_detected(self):
        h = [op(0, "deletemin", (1,), (42,), 0, 1)]
        problems = check_necessary_conditions(h)
        assert any("never inserted" in p for p in problems)

    def test_overdelivery_detected(self):
        h = [
            op(0, "insert", (1, 2, 3), (), 0, 1),
            op(1, "deletemin", (1,), (1, 2), 2, 3),
        ]
        problems = check_necessary_conditions(h)
        assert any("asked for 1" in p for p in problems)

    def test_unsorted_result_detected(self):
        h = [
            op(0, "insert", (1, 2), (), 0, 1),
            op(1, "deletemin", (2,), (2, 1), 2, 3),
        ]
        problems = check_necessary_conditions(h)
        assert any("not sorted" in p for p in problems)


def record_bgpq_history(seed, n_threads=4, ops_per_thread=5, k=8):
    """Drive BGPQ concurrently with unique keys, recording the history."""
    pq = make_pq(k=k)
    eng = Engine(seed=seed, record_labels=True)
    rec = HistoryRecorder()
    key_counter = [0]

    def worker(i):
        r = np.random.default_rng(seed * 71 + i)
        for _ in range(ops_per_thread):
            if r.random() < 0.55:
                n = int(r.integers(1, k + 1))
                base = key_counter[0]
                key_counter[0] += n
                # unique keys, randomised values
                batch = (np.arange(base, base + n) * 7919 + int(r.integers(0, 7919))) % 10**6
                batch = batch * 100 + np.arange(base, base + n) % 100  # keep unique
                yield from recorded_op(rec, "insert", batch.tolist(), pq.insert_op(batch))
            else:
                c = int(r.integers(1, k + 1))
                yield from recorded_op(rec, "deletemin", (c,), pq.deletemin_op(c))

    for i in range(n_threads):
        eng.spawn(worker(i), name=f"w{i}")
    eng.run()
    return collect_history(eng)


@pytest.mark.parametrize("seed", range(12))
def test_bgpq_histories_are_linearizable(seed):
    history = record_bgpq_history(seed)
    assert check_necessary_conditions(history) == []
    assert_linearizable(history)


def test_bgpq_larger_history_necessary_conditions():
    """Bigger run than the full checker can handle: cheap checks only."""
    history = record_bgpq_history(seed=100, n_threads=8, ops_per_thread=20)
    assert check_necessary_conditions(history) == []
