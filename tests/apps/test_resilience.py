"""Backoff policy and overflow-list guarantees (satellite of serve)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.resilience import OverflowList, jittered_backoff_ns


# -- jittered_backoff_ns ---------------------------------------------------

def test_no_rng_reproduces_fixed_doubling():
    # the historical retry schedule of the fault campaigns — changing
    # it would shift every committed campaign result
    assert [jittered_backoff_ns(a, 2_000.0) for a in range(3)] == [
        2_000.0, 4_000.0, 8_000.0
    ]


def test_cap_applies():
    assert jittered_backoff_ns(50, 2_000.0, cap_ns=10_000.0) == 10_000.0


def test_huge_attempt_does_not_overflow():
    val = jittered_backoff_ns(10_000, 2_000.0, cap_ns=1e6)
    assert val == 1e6


def test_deterministic_given_seed():
    a = [jittered_backoff_ns(i, rng=random.Random(42)) for i in range(5)]
    b = [jittered_backoff_ns(i, rng=random.Random(42)) for i in range(5)]
    assert a == b


def test_validation():
    with pytest.raises(ValueError):
        jittered_backoff_ns(-1)
    with pytest.raises(ValueError):
        jittered_backoff_ns(0, jitter=1.5)


@settings(max_examples=50, deadline=None)
@given(attempt=st.integers(min_value=0, max_value=100),
       seed=st.integers(min_value=0, max_value=1000),
       jitter=st.floats(min_value=0.0, max_value=1.0))
def test_jitter_bounds(attempt, seed, jitter):
    """The jittered delay always lands in [raw*(1-jitter), raw]."""
    raw = jittered_backoff_ns(attempt)
    val = jittered_backoff_ns(attempt, rng=random.Random(seed), jitter=jitter)
    assert raw * (1.0 - jitter) <= val <= raw


def test_zero_jitter_is_exact():
    assert jittered_backoff_ns(3, rng=random.Random(1), jitter=0.0) == \
        jittered_backoff_ns(3)


# -- OverflowList ordered drain --------------------------------------------

def test_pop_one_returns_minimum():
    ov = OverflowList()
    ov.push(np.array([9, 2, 7], dtype=np.int64))
    ov.push(np.array([1], dtype=np.int64))
    assert ov.pop_one() == 1
    assert ov.pop_one() == 2
    assert ov.routed == 4
    assert ov.drained == 2
    assert len(ov) == 2


def test_empty_pop_is_none():
    ov = OverflowList()
    assert ov.pop_one() is None
    assert ov.drained == 0


@settings(max_examples=50, deadline=None)
@given(batches=st.lists(
    st.lists(st.integers(min_value=-1000, max_value=1000),
             min_size=1, max_size=8),
    max_size=10,
))
def test_drain_is_globally_sorted(batches):
    """Interleaved pushes then a full drain yield the sorted multiset —
    degraded keys re-enter the solvers in best-first order."""
    ov = OverflowList()
    everything = []
    for batch in batches:
        ov.push(np.array(batch, dtype=np.int64))
        everything.extend(batch)
    drained = []
    while (k := ov.pop_one()) is not None:
        drained.append(k)
    assert drained == sorted(everything)
    assert ov.routed == ov.drained == len(everything)


def test_drain_interleaved_with_pushes_stays_min_first():
    ov = OverflowList()
    ov.push(np.array([5, 3], dtype=np.int64))
    assert ov.pop_one() == 3
    ov.push(np.array([1], dtype=np.int64))  # smaller key arrives late
    assert ov.pop_one() == 1
    assert ov.pop_one() == 5
