"""A* application tests: grids, heuristics, all three engines."""

import numpy as np
import pytest

from repro.apps.astar import (
    Grid,
    astar_batched,
    astar_concurrent,
    astar_sequential,
    chebyshev,
    generate_grid,
    manhattan,
    octile,
)
from repro.baselines import LJSkipListPQ, SprayListPQ, TbbHeapPQ


class TestGrid:
    def test_generation_properties(self):
        g = generate_grid(40, 0.2, seed=0)
        assert g.height == g.width == 40
        assert not g.blocked[g.start] and not g.blocked[g.target]
        assert g.has_path()
        assert 0.1 < g.obstacle_rate() < 0.3

    def test_path_guaranteed_even_at_high_density(self):
        for seed in range(5):
            g = generate_grid(25, 0.45, seed=seed)
            assert g.has_path(), seed

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_grid(1)
        with pytest.raises(ValueError):
            generate_grid(10, obstacle_rate=1.0)

    def test_neighbors_scalar(self):
        g = Grid(np.zeros((3, 3), dtype=bool), (0, 0), (2, 2))
        assert len(g.neighbors(1, 1)) == 8
        assert len(g.neighbors(0, 0)) == 3

    def test_neighbors_respect_obstacles(self):
        blocked = np.zeros((3, 3), dtype=bool)
        blocked[0, 1] = True
        g = Grid(blocked, (0, 0), (2, 2))
        assert (0, 1) not in g.neighbors(0, 0)

    def test_neighbors_batch_matches_scalar(self):
        g = generate_grid(20, 0.3, seed=3)
        cells = np.array([g.cell_id(y, x) for y in range(20) for x in range(0, 20, 3)
                          if not g.blocked[y, x]])
        parent_idx, ncells = g.neighbors_batch(cells)
        for i, cell in enumerate(cells.tolist()):
            y, x = divmod(cell, g.width)
            expect = sorted(ny * g.width + nx for ny, nx in g.neighbors(y, x))
            got = sorted(ncells[parent_idx == i].tolist())
            assert got == expect

    def test_deterministic(self):
        a = generate_grid(30, 0.2, seed=9)
        b = generate_grid(30, 0.2, seed=9)
        assert np.array_equal(a.blocked, b.blocked)


class TestHeuristics:
    def test_values(self):
        assert manhattan(0, 0, 3, 4) == 7
        assert chebyshev(0, 0, 3, 4) == 4
        assert octile(0, 0, 3, 4) == 4  # diag cost 1 -> chebyshev

    def test_chebyshev_admissible_manhattan_not(self):
        # moving diagonally 5 steps: true cost 5
        assert chebyshev(0, 0, 5, 5) == 5
        assert manhattan(0, 0, 5, 5) == 10  # overestimates

    def test_vectorised(self):
        ys = np.array([0, 1])
        xs = np.array([0, 1])
        assert list(manhattan(ys, xs, 2, 2)) == [4, 2]


class TestEngines:
    def test_open_grid_diagonal_distance(self):
        g = Grid(np.zeros((10, 10), dtype=bool), (0, 0), (9, 9))
        assert astar_sequential(g, "chebyshev").cost == 9
        assert astar_batched(g, "chebyshev", batch=16).cost == 9

    def test_unreachable_target(self):
        blocked = np.zeros((5, 5), dtype=bool)
        blocked[2, :] = True  # wall across
        g = Grid(blocked, (0, 0), (4, 4))
        assert astar_sequential(g).cost is None
        assert astar_batched(g, batch=8).cost is None

    @pytest.mark.parametrize("seed", range(5))
    def test_batched_matches_sequential_admissible(self, seed):
        g = generate_grid(30, 0.25, seed=seed)
        a = astar_sequential(g, "chebyshev")
        b = astar_batched(g, "chebyshev", batch=32)
        assert a.cost == b.cost
        assert b.sim_time_ns > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_manhattan_near_optimal(self, seed):
        """The paper's (inadmissible) heuristic: both engines find a
        path within a few percent of optimal."""
        g = generate_grid(30, 0.15, seed=seed)
        opt = astar_sequential(g, "chebyshev").cost
        for r in (astar_sequential(g, "manhattan"), astar_batched(g, "manhattan", batch=32)):
            assert r.found
            assert opt <= r.cost <= opt * 1.25

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(lambda: TbbHeapPQ(), id="tbb"),
            pytest.param(lambda: LJSkipListPQ(cleanup_batch=16), id="ljsl"),
            pytest.param(lambda: SprayListPQ(n_threads=8), id="spray"),
        ],
    )
    def test_concurrent_matches_sequential(self, make):
        g = generate_grid(20, 0.15, seed=4)
        opt = astar_sequential(g, "chebyshev").cost
        r = astar_concurrent(g, make(), heuristic="chebyshev", n_threads=8)
        assert r.cost == opt
        assert r.sim_time_ns > 0

    def test_start_is_target(self):
        g = Grid(np.zeros((3, 3), dtype=bool), (1, 1), (1, 1))
        assert astar_sequential(g).cost == 0
        assert astar_batched(g, batch=4).cost == 0

    def test_expanded_counts_positive(self):
        g = generate_grid(25, 0.1, seed=0)
        r = astar_batched(g, batch=16)
        assert r.expanded > 0 and r.pushed > 0
