"""Knapsack application tests: generators, bounds, DP, B&B variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.knapsack import (
    FAMILIES,
    KnapsackInstance,
    dantzig_upper_bound,
    dantzig_upper_bound_batch,
    generate,
    greedy_completion,
    solve_batched,
    solve_concurrent,
    solve_dp,
    solve_sequential,
)
from repro.baselines import LJSkipListPQ, SprayListPQ, TbbHeapPQ


class TestInstance:
    def test_generate_all_families(self):
        for fam in FAMILIES:
            inst = generate(50, family=fam, seed=1)
            assert inst.n_items == 50
            assert inst.capacity > 0
            assert inst.family == fam

    def test_density_sorted(self):
        inst = generate(100, seed=2)
        density = inst.profits / inst.weights
        assert np.all(density[:-1] >= density[1:])

    def test_strongly_correlated_structure(self):
        inst = generate(50, family="strongly_correlated", R=1000, seed=0)
        assert np.all(inst.profits == inst.weights + 100)

    def test_subset_sum_structure(self):
        inst = generate(50, family="subset_sum", seed=0)
        assert np.array_equal(inst.profits, inst.weights)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate(10, family="nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            generate(0)
        with pytest.raises(ValueError):
            KnapsackInstance(np.array([1, 2]), np.array([1]), 10)
        with pytest.raises(ValueError):
            KnapsackInstance(np.array([1]), np.array([1]), 0)
        with pytest.raises(ValueError):  # not density sorted
            KnapsackInstance(np.array([1, 10]), np.array([2, 2]), 10)

    def test_deterministic_by_seed(self):
        a = generate(30, seed=7)
        b = generate(30, seed=7)
        assert np.array_equal(a.profits, b.profits)
        assert np.array_equal(a.weights, b.weights)

    def test_greedy_value_feasible(self):
        inst = generate(40, seed=3)
        take = np.cumsum(inst.weights) <= inst.capacity
        assert inst.greedy_value() == inst.profits[take].sum()


class TestBounds:
    def test_root_bound_at_least_optimum(self):
        for seed in range(5):
            inst = generate(18, R=60, seed=seed)
            assert dantzig_upper_bound(inst, 0, 0, 0) >= solve_dp(inst)

    def test_bound_of_leaf_is_profit(self):
        inst = generate(10, seed=0)
        assert dantzig_upper_bound(inst, inst.n_items, 123, 0) == 123.0

    def test_infeasible_node_bound(self):
        inst = generate(10, seed=0)
        assert dantzig_upper_bound(inst, 0, 0, inst.capacity + 1) == -np.inf

    def test_batch_matches_scalar(self):
        inst = generate(25, R=80, seed=4)
        rng = np.random.default_rng(0)
        levels = rng.integers(0, inst.n_items + 1, size=64)
        weights = rng.integers(0, inst.capacity + 10, size=64)
        profits = rng.integers(0, 500, size=64)
        batch = dantzig_upper_bound_batch(inst, levels, profits, weights)
        for i in range(64):
            scalar = dantzig_upper_bound(
                inst, int(levels[i]), int(profits[i]), int(weights[i])
            )
            assert batch[i] == pytest.approx(scalar), i

    def test_greedy_completion_bounds(self):
        inst = generate(15, R=40, seed=5)
        lb = greedy_completion(inst, 0, 0, 0)
        assert 0 <= lb <= solve_dp(inst)
        assert greedy_completion(inst, 0, 0, inst.capacity + 1) == -1


class TestSolvers:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sequential_matches_dp(self, family, seed):
        inst = generate(18, family=family, R=60, seed=seed)
        assert solve_sequential(inst).best_profit == solve_dp(inst)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_batched_matches_dp(self, family, seed):
        inst = generate(18, family=family, R=60, seed=seed)
        r = solve_batched(inst, batch=16)
        assert r.best_profit == solve_dp(inst)
        assert r.sim_time_ns > 0
        assert r.nodes_expanded > 0

    def test_batched_batch_size_tradeoff_runs(self):
        inst = generate(20, family="weakly_correlated", R=60, seed=2)
        opt = solve_dp(inst)
        for batch in (4, 64, 256):
            assert solve_batched(inst, batch=batch).best_profit == opt

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(lambda: TbbHeapPQ(), id="tbb"),
            pytest.param(lambda: LJSkipListPQ(cleanup_batch=16), id="ljsl"),
            pytest.param(lambda: SprayListPQ(n_threads=8), id="spray"),
        ],
    )
    def test_concurrent_matches_dp(self, make):
        inst = generate(14, family="strongly_correlated", R=40, seed=1)
        r = solve_concurrent(inst, make(), n_threads=8)
        assert r.best_profit == solve_dp(inst)
        assert r.sim_time_ns > 0

    def test_trivial_instances(self):
        # single item that fits
        inst = KnapsackInstance(np.array([10]), np.array([5]), 5)
        assert solve_sequential(inst).best_profit == 10
        assert solve_batched(inst, batch=4).best_profit == 10
        # single item that does not fit
        inst2 = KnapsackInstance(np.array([10]), np.array([50]), 5)
        assert solve_sequential(inst2).best_profit == 0
        assert solve_batched(inst2, batch=4).best_profit == 0

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_all_solvers_agree(self, seed):
        inst = generate(12, family="uncorrelated", R=30, seed=seed)
        opt = solve_dp(inst)
        assert solve_sequential(inst).best_profit == opt
        assert solve_batched(inst, batch=8).best_profit == opt
