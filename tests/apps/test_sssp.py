"""SSSP extension tests."""

import numpy as np
import pytest

from repro.apps.sssp import (
    CSRGraph,
    UNREACHED,
    from_networkx,
    random_graph,
    sssp_batched,
    sssp_sequential,
)


def test_random_graph_shape():
    g = random_graph(100, avg_degree=4, seed=0)
    assert g.n_vertices == 100
    assert g.n_edges == 400
    assert g.indptr[-1] == g.n_edges


def test_random_graph_validation():
    with pytest.raises(ValueError):
        random_graph(0)


def test_out_edges():
    g = random_graph(50, avg_degree=3, seed=1)
    nbrs, ws = g.out_edges(0)
    assert nbrs.size == ws.size == g.indptr[1] - g.indptr[0]


def test_sequential_tiny_graph():
    #  0 ->(1) 1 ->(1) 2 ; 0 ->(5) 2
    indptr = np.array([0, 2, 3, 3])
    indices = np.array([1, 2, 2])
    weights = np.array([1, 5, 1])
    g = CSRGraph(indptr, indices, weights)
    dist = sssp_sequential(g, 0)
    assert list(dist) == [0, 1, 2]


def test_unreachable_vertices():
    indptr = np.array([0, 0, 0])
    g = CSRGraph(indptr, np.empty(0, np.int64), np.empty(0, np.int64))
    dist = sssp_sequential(g, 0)
    assert dist[0] == 0 and dist[1] == UNREACHED


@pytest.mark.parametrize("seed", range(4))
def test_batched_matches_sequential(seed):
    g = random_graph(300, avg_degree=6, seed=seed)
    expect = sssp_sequential(g, 0)
    got, sim_ns = sssp_batched(g, 0, batch=32)
    assert np.array_equal(got, expect)
    assert sim_ns > 0


def test_batched_matches_networkx():
    import networkx as nx

    nxg = nx.gnm_random_graph(80, 400, seed=3, directed=True)
    for _, _, d in nxg.edges(data=True):
        d["weight"] = 1 + (hash(str(d)) % 7)
    rng = np.random.default_rng(0)
    for u, v, d in nxg.edges(data=True):
        d["weight"] = int(rng.integers(1, 20))
    g = from_networkx(nxg)
    expect = sssp_sequential(g, 0)
    got, _ = sssp_batched(g, 0, batch=16)
    assert np.array_equal(got, expect)
    # cross-check a few vertices against networkx itself
    lengths = nx.single_source_dijkstra_path_length(nxg, 0)
    for v in range(80):
        if v in lengths:
            assert expect[v] == lengths[v]
        else:
            assert expect[v] == UNREACHED


def test_from_networkx_empty():
    import networkx as nx

    g = from_networkx(nx.DiGraph())
    assert g.n_vertices == 0
