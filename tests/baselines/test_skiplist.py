"""Skip-list substrate tests."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.skiplist import SkipList


def test_insert_and_order():
    sl = SkipList(seed=1)
    for k in [5, 1, 9, 3]:
        sl.insert(k)
    assert list(sl.live_keys()) == [1, 3, 5, 9]
    assert len(sl) == 4


def test_duplicates_allowed():
    sl = SkipList(seed=1)
    for k in [2, 2, 2]:
        sl.insert(k)
    assert list(sl.live_keys()) == [2, 2, 2]


def test_logical_delete_min():
    sl = SkipList(seed=1)
    for k in [4, 2, 6]:
        sl.insert(k)
    key, _ = sl.logical_delete_min()
    assert key == 2
    assert len(sl) == 2
    assert sl.logically_deleted == 1
    # deleted key no longer visible
    assert list(sl.live_keys()) == [4, 6]


def test_logical_delete_empty():
    sl = SkipList(seed=1)
    key, _ = sl.logical_delete_min()
    assert key is None


def test_physical_cleanup_unlinks_prefix():
    sl = SkipList(seed=3)
    for k in range(20):
        sl.insert(k)
    for _ in range(7):
        sl.logical_delete_min()
    removed, _ = sl.physical_cleanup()
    assert removed == 7
    assert sl.logically_deleted == 0
    assert list(sl.live_keys()) == list(range(7, 20))
    assert sl.check_invariants() == []


def test_cleanup_noop_when_nothing_deleted():
    sl = SkipList(seed=3)
    sl.insert(1)
    removed, _ = sl.physical_cleanup()
    assert removed == 0


def test_sweep_deleted_handles_scattered_marks():
    sl = SkipList(seed=5)
    nodes = []
    for k in range(30):
        sl.insert(k)
    # mark every third node via spray-ish access
    node = sl.head.forward[0]
    i = 0
    while node is not None:
        if i % 3 == 0:
            sl.mark(node)
        node = node.forward[0]
        i += 1
    removed, _ = sl.sweep_deleted()
    assert removed == 10
    assert list(sl.live_keys()) == [k for k in range(30) if k % 3 != 0]
    assert sl.check_invariants() == []


def test_spray_lands_on_live_node_near_head():
    sl = SkipList(seed=7)
    n = 20_000
    for k in range(n):
        sl.insert(k)
    rng = random.Random(0)
    landings = []
    for _ in range(200):
        node, _ = sl.spray(n_threads=80, rng=rng)
        assert node is not None and not node.deleted
        landings.append(node.key)
    # sprays concentrate near the head: the walk's reach is bounded by
    # O(p log^3 p), far inside a 20K-key list, and heavily front-loaded
    assert max(landings) < n / 4
    assert sum(landings) / len(landings) < n / 16


def test_spray_on_empty_returns_none():
    sl = SkipList(seed=7)
    node, _ = sl.spray(n_threads=8, rng=random.Random(0))
    assert node is None


def test_mark_returns_false_on_double_claim():
    sl = SkipList(seed=1)
    sl.insert(5)
    node = sl.head.forward[0]
    assert sl.mark(node)
    assert not sl.mark(node)


def test_invalid_p():
    with pytest.raises(ValueError):
        SkipList(p=0.0)
    with pytest.raises(ValueError):
        SkipList(p=1.0)


def test_hops_positive_and_logarithmic_ish():
    sl = SkipList(seed=11)
    total = 0
    for k in np.random.default_rng(0).permutation(4096).tolist():
        total += sl.insert(k)
    mean_hops = total / 4096
    assert 2 < mean_hops < 120  # ~ c*log2(n), not linear


@given(st.lists(st.integers(-1000, 1000), max_size=200))
@settings(max_examples=40, deadline=None)
def test_matches_sorted_semantics(keys):
    sl = SkipList(seed=13)
    for k in keys:
        sl.insert(k)
    assert list(sl.live_keys()) == sorted(keys)
    out = []
    while True:
        k, _ = sl.logical_delete_min()
        if k is None:
            break
        out.append(k)
    assert out == sorted(keys)
    assert sl.check_invariants() == []
