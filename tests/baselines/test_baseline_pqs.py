"""Correctness tests for every comparator priority queue.

All exact designs must return globally minimal keys in phase runs and
conserve keys under mixed concurrency; the relaxed SprayList gets the
conservation checks plus a looseness bound instead of exactness.
"""

import numpy as np
import pytest

from repro.baselines import (
    CBPQ,
    HuntHeapPQ,
    LJSkipListPQ,
    PSyncHeapPQ,
    SprayListPQ,
    TbbHeapPQ,
)
from repro.core import BGPQ
from repro.sim import Engine

from .conftest import run_mixed, run_phases

EXACT_PQS = [
    pytest.param(lambda: TbbHeapPQ(), id="tbb"),
    pytest.param(lambda: HuntHeapPQ(), id="hunt"),
    pytest.param(lambda: CBPQ(chunk_capacity=16), id="cbpq"),
    pytest.param(lambda: LJSkipListPQ(cleanup_batch=8), id="ljsl"),
    pytest.param(lambda: PSyncHeapPQ(node_capacity=8), id="psync"),
]

ALL_PQS = EXACT_PQS + [pytest.param(lambda: SprayListPQ(n_threads=4), id="spray")]


@pytest.mark.parametrize("make", ALL_PQS)
def test_roundtrip_conserves_keys(make):
    pq = make()
    keys = np.random.default_rng(0).integers(0, 1 << 20, size=256)
    out = run_phases(pq, keys, n_threads=4, seed=0)
    assert np.array_equal(np.sort(out), np.sort(keys))
    assert len(pq) == 0


@pytest.mark.parametrize("make", EXACT_PQS)
def test_single_thread_exact_order(make):
    pq = make()
    keys = np.random.default_rng(1).permutation(64)
    eng = Engine()
    got = []

    def t():
        for i in range(0, keys.size, 8):  # P-Sync's fixed batch is 8 here
            yield from pq.insert_op(keys[i : i + 8])
        while True:
            g = yield from pq.deletemin_op(4)
            if g.size == 0:
                return
            got.append(g)

    eng.spawn(t())
    eng.run()
    assert np.array_equal(np.concatenate(got), np.arange(64))


@pytest.mark.parametrize("make", ALL_PQS)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_mixed_concurrency_conservation(make, seed):
    pq = make()
    ins, dels = run_mixed(pq, n_threads=4, ops=15, seed=seed)
    rest = pq.snapshot_keys()
    assert np.array_equal(np.sort(ins), np.sort(np.concatenate([dels, rest])))


@pytest.mark.parametrize("make", EXACT_PQS)
def test_empty_deletemin_returns_nothing(make):
    pq = make()
    eng = Engine()
    res = []

    def t():
        got = yield from pq.deletemin_op(4)
        res.append(got)

    eng.spawn(t())
    eng.run()
    assert res[0].size == 0


@pytest.mark.parametrize("make", ALL_PQS)
def test_deletemin_count_validation(make):
    pq = make()
    with pytest.raises(ValueError):
        list(pq.deletemin_op(0))


def test_spraylist_is_near_minimal_not_exact():
    """Spray deletes must come from near the head (relaxed guarantee)."""
    pq = SprayListPQ(n_threads=8, seed=3)
    keys = np.arange(2000)
    eng = Engine(seed=1)

    def filler():
        for i in range(0, 2000, 8):
            yield from pq.insert_op(keys[i : i + 8])

    eng.spawn(filler())
    eng.run()

    eng2 = Engine(seed=2)
    got = []

    def d():
        g = yield from pq.deletemin_op(8)
        got.append(g)

    for _ in range(4):
        eng2.spawn(d())
    eng2.run()
    taken = np.concatenate(got)
    assert taken.size == 32
    # relaxed: all from the first O(p log^3 p) region, not necessarily 0..31
    assert taken.max() < 1500
    assert len(pq) == 2000 - 32


def test_spraylist_collisions_counted_on_small_queue():
    pq = SprayListPQ(n_threads=8, seed=0)
    eng = Engine(seed=0)

    def w(i):
        yield from pq.insert_op(np.array([i]))
        got = yield from pq.deletemin_op(1)
        assert got.size == 1

    for i in range(8):
        eng.spawn(w(i))
    eng.run()
    # near-empty queue => sprays collide (paper §6.4's observation)
    assert pq.stats["sprays"] >= 8


def test_ljsl_batches_physical_deletes():
    pq = LJSkipListPQ(cleanup_batch=16)
    keys = np.arange(200)
    run_phases(pq, keys, n_threads=2, seed=0)
    assert pq.stats["cleanups"] >= 1
    # far fewer cleanups than deletes: that's the batching
    assert pq.stats["cleanups"] <= pq.stats["marks"] / 8


def test_cbpq_splits_and_rebuilds():
    pq = CBPQ(chunk_capacity=8)
    keys = np.random.default_rng(2).permutation(512)
    out = run_phases(pq, keys, n_threads=4, seed=0)
    assert np.array_equal(np.sort(out), np.arange(512))
    assert pq.stats["rebuilds"] >= 1


def test_cbpq_chunk_pool_capacity():
    from repro.errors import CapacityError, SimThreadError

    pq = CBPQ(chunk_capacity=4, max_chunks=2)
    eng = Engine()

    def t():
        yield from pq.insert_op(np.arange(64))

    eng.spawn(t())
    with pytest.raises((CapacityError, SimThreadError)):
        eng.run()


def test_hunt_bit_reverse():
    from repro.baselines.hunt import bit_reverse

    assert bit_reverse(0b001, 3) == 0b100
    assert bit_reverse(0b110, 3) == 0b011
    assert bit_reverse(0b1, 1) == 0b1


def test_psync_serializes_operations():
    """P-Sync ops queue on the pipeline lock: makespan is the sum of
    per-op costs, regardless of thread count."""
    pq = PSyncHeapPQ(node_capacity=8)
    keys = np.arange(128)
    eng = Engine(seed=0)

    def w(i):
        yield from pq.insert_op(keys[i * 32 : (i + 1) * 32][:8])

    for i in range(4):
        eng.spawn(w(i))
    eng.run()
    assert pq.pipeline_lock.contended_acquisitions >= 1


def test_features_match_paper_table1():
    """Spot-check the Table 1 feature matrix."""
    assert BGPQ.features().data_parallelism
    assert BGPQ.features().thread_collaboration
    assert BGPQ.features().linearizable
    assert not TbbHeapPQ.features().data_parallelism
    assert PSyncHeapPQ.features().data_parallelism
    assert not PSyncHeapPQ.features().thread_collaboration
    assert CBPQ.features().thread_collaboration
    assert not SprayListPQ.features().exact_deletemin
    assert LJSkipListPQ.features().data_structure == "Skip list"
