"""Model-based testing: the skip list against a sorted-list model.

Hypothesis drives random interleavings of insert / logical-delete-min /
cleanup / sweep against a plain sorted-list reference; after every
step the live keys, size, and allocation counters must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.skiplist import SkipList

op_strategy = st.lists(
    st.one_of(
        st.integers(-100, 100).map(lambda k: ("insert", k)),
        st.just(("delete_min", None)),
        st.just(("cleanup", None)),
    ),
    max_size=120,
)


@given(op_strategy, st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_skiplist_matches_sorted_model(ops, seed):
    sl = SkipList(seed=seed)
    model: list = []
    for kind, arg in ops:
        if kind == "insert":
            sl.insert(arg)
            model.append(arg)
            model.sort()
        elif kind == "delete_min":
            key, _ = sl.logical_delete_min()
            if model:
                assert key == model.pop(0)
            else:
                assert key is None
        else:
            sl.physical_cleanup()
        assert len(sl) == len(model)
    assert list(sl.live_keys()) == model
    assert sl.check_invariants() == []
    # after a full cleanup, allocations equal live nodes
    sl.physical_cleanup()
    assert sl.allocated_nodes == len(model)


@given(op_strategy, st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_spray_marks_match_model_multiset(ops, seed):
    """Spray-marking arbitrary live nodes then sweeping: the survivors
    equal the model minus exactly the marked keys."""
    import random

    sl = SkipList(seed=seed)
    model: list = []
    rng = random.Random(seed)
    marked: list = []
    for kind, arg in ops:
        if kind == "insert":
            sl.insert(arg)
            model.append(arg)
        elif kind == "delete_min":
            node, _ = sl.spray(n_threads=4, rng=rng)
            if node is not None and sl.mark(node):
                marked.append(node.key)
        else:
            sl.sweep_deleted()
    sl.sweep_deleted()
    model.sort()
    for k in marked:
        model.remove(k)
    assert list(sl.live_keys()) == model
    assert sl.check_invariants() == []
