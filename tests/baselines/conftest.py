"""Shared drivers for baseline priority-queue tests."""

import numpy as np

from repro.sim import Engine


def run_phases(pq, keys, n_threads=4, seed=0, batch=8):
    """Insert all ``keys`` concurrently, then delete everything
    concurrently; returns the deleted keys (unsorted concatenation)."""
    keys = np.asarray(keys)
    eng = Engine(seed=seed)
    chunks = [keys[i::n_threads] for i in range(n_threads)]

    def inserter(i):
        ks = chunks[i]
        for j in range(0, ks.size, batch):
            yield from pq.insert_op(ks[j : j + batch])

    for i in range(n_threads):
        eng.spawn(inserter(i))
    eng.run()

    eng2 = Engine(seed=seed + 1)
    out = []

    def deleter(i):
        while True:
            got = yield from pq.deletemin_op(batch)
            if got.size == 0:
                return
            out.append(got)

    for i in range(n_threads):
        eng2.spawn(deleter(i))
    eng2.run()
    return np.concatenate(out) if out else np.empty(0, dtype=keys.dtype)


def run_mixed(pq, n_threads=4, ops=20, seed=0, kmax=8):
    """Random mixed workload; returns (inserted, deleted) arrays."""
    eng = Engine(seed=seed)
    inserted, deleted = [], []

    def worker(i):
        r = np.random.default_rng(seed * 997 + i)
        for _ in range(ops):
            if r.random() < 0.6:
                b = r.integers(0, 1 << 20, size=int(r.integers(1, kmax + 1)))
                inserted.append(b.copy())
                yield from pq.insert_op(b)
            else:
                got = yield from pq.deletemin_op(int(r.integers(1, kmax + 1)))
                if got.size:
                    deleted.append(got)

    for i in range(n_threads):
        eng.spawn(worker(i))
    eng.run()
    ins = np.concatenate(inserted) if inserted else np.empty(0, np.int64)
    dels = np.concatenate(deleted) if deleted else np.empty(0, np.int64)
    return ins, dels
