"""Reporting / rendering / archiving tests."""

import json

import pytest

from repro.bench.reporting import render_rows, save_results, speedup_summary
from repro.bench.table1 import render_table1, table1_features


def test_render_rows_alignment():
    rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.001}]
    text = render_rows(rows, "title")
    lines = text.splitlines()
    assert lines[0] == "title"
    assert "a" in lines[1] and "b" in lines[1]
    # all data lines equal width
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_render_rows_empty():
    assert "(no rows)" in render_rows([], "t")


def test_render_rows_float_formats():
    text = render_rows([{"x": 12345.6, "y": 3.14159, "z": 0.00123}])
    assert "12,346" in text
    assert "3.1" in text
    assert "0.001" in text


def test_save_results_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "out"))
    path = save_results("unit", [{"v": 1}], meta={"scale": 42})
    data = json.loads(path.read_text())
    assert data["experiment"] == "unit"
    assert data["meta"]["scale"] == 42
    assert data["rows"] == [{"v": 1}]


def test_speedup_summary():
    rows = [{"B/T": 10.0}, {"B/T": 30.0}, {"B/T": 20.0}]
    s = speedup_summary(rows, ["B/T", "B/X"])
    assert s["B/T"]["min"] == 10.0
    assert s["B/T"]["max"] == 30.0
    assert s["B/T"]["mean"] == pytest.approx(20.0)
    assert "B/X" not in s


def test_table1_row_set_matches_paper():
    names = [f.name for f in table1_features()]
    assert names == ["Hunt", "CBPQ", "STSL", "LJSL", "SprayList", "GFSL", "P-Sync", "BGPQ"]


def test_render_table1_contains_all_columns():
    text = render_table1()
    for col in ("Data Parallelism", "Task Parallelism", "Thread Collaboration",
                "Memory Efficient", "Linearizable", "Data Structure"):
        assert col in text
    assert "BGPQ" in text and "GFSL" in text


def test_ascii_chart_bars_scale():
    from repro.bench import ascii_chart

    text = ascii_chart({1: 10.0, 2: 5.0, 4: 2.5}, width=40, label="t")
    lines = text.splitlines()
    assert lines[0] == "t"
    bars = [line.count("#") for line in lines[1:]]
    assert bars[0] == 40          # peak fills the width
    assert bars[1] == 20 and bars[2] == 10
    assert "10.000" in lines[1]


def test_ascii_chart_empty_and_zero():
    from repro.bench import ascii_chart

    assert "(no data)" in ascii_chart({}, label="x")
    text = ascii_chart({1: 0.0})
    assert "0.000" in text
