"""Wall-clock bench lane: payload shape, gates, delta, CLI round trip."""

import json

import pytest

from repro.bench import wall
from repro.bench.micro import compare_to_baseline
from repro.obs.metrics import MetricsRegistry, validate_prometheus_text


@pytest.fixture(scope="module")
def results():
    """One tiny-iteration run shared by the shape/gate tests."""
    return wall.run_wall(ks=(4,), quick=True, op_iters=2)


def test_payload_shape(results):
    assert results["benchmark"] == "wall"
    variants = results["meta"]["variants"]
    assert variants[0] == "list" and variants[1] == "numpy"
    assert len(results["rows"]) == len(wall.WALL_BENCHES) * len(variants)
    for variant in variants:
        assert variant in results["meta"]["kernels"]
        assert "backend" in results["meta"]["kernels"][variant]


def test_speedup_keys_group_by_lane(results):
    """Keys must group as bench:variant under compare_to_baseline's
    ``key.split("/")[0]`` convention — one gate per (bench, variant)."""
    for key in results["speedups"]:
        lane, _, kpart = key.partition("/")
        bench, _, variant = lane.partition(":")
        assert bench in wall.WALL_BENCHES
        assert variant in results["meta"]["variants"] and variant != "list"
        assert kpart == "k=4"


def test_baseline_comparison_round_trip(results):
    assert compare_to_baseline(results, results) == []
    slower = json.loads(json.dumps(results))
    for key in slower["speedups"]:
        slower["speedups"][key] = results["speedups"][key] * 4 + 1
    assert compare_to_baseline(results, slower) != []


def test_floor_gate_logic(results):
    # quick runs and sweeps without k=512 never trip the floor
    assert wall.wall_gate_problems(results, quick=True) == []
    assert wall.wall_gate_problems(results, quick=False) == []

    fake = {
        "meta": {"compiled_available": ["cext"], "ks": [512]},
        "speedups": {"mixed:cext-parallel/k=512": 3.0},
    }
    problems = wall.wall_gate_problems(fake, quick=False)
    assert len(problems) == 1 and "floor missed" in problems[0]
    fake["speedups"]["mixed:cext-parallel/k=512"] = 12.5
    assert wall.wall_gate_problems(fake, quick=False) == []
    fake["speedups"] = {}
    assert "missing" in wall.wall_gate_problems(fake, quick=False)[0]
    fake["meta"]["compiled_available"] = []
    assert wall.wall_gate_problems(fake, quick=False) == []


def test_render_wall_delta(results):
    text = wall.render_wall_delta(results, results)
    assert "geomean(now)" in text
    for variant in results["meta"]["variants"][1:]:
        assert f"insert:{variant}" in text


def test_delta_skips_lanes_missing_from_current(results):
    """A numpy-only host gating against a compiled baseline must only
    compare the lanes it actually ran."""
    current = json.loads(json.dumps(results))
    current["speedups"] = {
        key: val
        for key, val in current["speedups"].items()
        if ":numpy/" in key
    }
    assert compare_to_baseline(current, results) == []
    text = wall.render_wall_delta(current, results)
    assert "numpy" in text and "cext" not in text


def test_instrumented_pass_feeds_histograms():
    registry = MetricsRegistry()
    done = wall.instrumented_mixed_pass(registry, k=4, iters=4,
                                        backends=["numpy"])
    assert done == {"numpy": 4}
    text = registry.to_prometheus()
    validate_prometheus_text(text)
    assert "repro_kernel_wall_ns" in text
    assert 'backend="numpy"' in text


def test_cli_wall_lane(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_BENCH_WALL_BASELINE",
                       str(tmp_path / "BENCH_wall.json"))
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "runs"))
    rc = main(["bench", "native", "--wall", "--quick", "--bench-ks", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "baseline written" in out
    base_path = tmp_path / "BENCH_wall.json"
    assert base_path.is_file()
    assert (tmp_path / "results" / "bench_wall.prom").is_file()

    # gate vs an easy baseline must pass; timing noise can't flip these
    # (the re-run is compared against deliberately skewed ratios, not
    # against its own jittery first run)
    baseline = json.loads(base_path.read_text())
    easy = json.loads(json.dumps(baseline))
    for key in easy["speedups"]:
        easy["speedups"][key] = 0.01
    base_path.write_text(json.dumps(easy))
    rc = main(["bench", "native", "--wall", "--quick", "--bench-ks", "4"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "no regression" in out

    # gate vs an impossible baseline must fail and ship the delta table
    hard = json.loads(json.dumps(baseline))
    for key in hard["speedups"]:
        hard["speedups"][key] = 1e9
    base_path.write_text(json.dumps(hard))
    rc = main(["bench", "native", "--wall", "--quick", "--bench-ks", "4"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "WALL-CLOCK GATE FAILED" in out
    assert (tmp_path / "results" / "bench_wall_delta.txt").is_file()


def test_cli_kernels_flag(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    from repro.primitives import kernels as kr

    monkeypatch.setenv("REPRO_BENCH_WALL_BASELINE",
                       str(tmp_path / "BENCH_wall.json"))
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "runs"))
    prev = kr._active
    try:
        rc = main(["bench", "native", "--wall", "--quick", "--bench-ks", "4",
                   "--kernels", "numpy"])
        assert rc == 0
        assert kr.active().name == "numpy"
    finally:
        kr._active = prev
