"""Micro perf-regression harness: structure, gating logic, CLI exit codes."""

import json

import pytest

from repro.bench.micro import (
    MICRO_KS,
    _alloc_loop,
    _drive,
    baseline_path,
    compare_to_baseline,
    run_micro,
)


@pytest.fixture(scope="module")
def quick_results():
    """One tiny real run shared by the structural tests."""
    return run_micro(ks=(8,), quick=True, prim_iters=50, op_iters=12)


def test_payload_structure(quick_results):
    r = quick_results
    assert r["benchmark"] == "micro"
    assert r["meta"]["quick"] is True
    benches = {row["bench"] for row in r["rows"]}
    assert benches == {"sort_split", "heapify_step", "insert", "delete", "mixed"}
    # one row per (bench, storage)
    assert len(r["rows"]) == 2 * len(benches)
    for row in r["rows"]:
        assert row["storage"] in ("arena", "list")
        assert row["ops_per_sec"] > 0
    assert set(r["speedups"]) == {f"{b}/k=8" for b in benches}
    assert list(r["zero_alloc"]) == ["heapify_step/k=8"]


def test_arena_heapify_is_allocation_free(quick_results):
    """The acceptance bar, at a small k so CI stays fast: the arena
    heapify step retains less than one key-buffer across the loop."""
    assert quick_results["zero_alloc"]["heapify_step/k=8"] is True


def test_compare_to_baseline_passes_identical():
    cur = {"speedups": {"mixed/k=8": 2.0}, "zero_alloc": {"heapify_step/k=8": True}}
    assert compare_to_baseline(cur, json.loads(json.dumps(cur))) == []


def test_compare_to_baseline_flags_speedup_regression():
    base = {"speedups": {"mixed/k=8": 2.0}, "zero_alloc": {}}
    ok = {"speedups": {"mixed/k=8": 1.7}, "zero_alloc": {}}  # -15%: inside 20%
    bad = {"speedups": {"mixed/k=8": 1.5}, "zero_alloc": {}}  # -25%: outside
    assert compare_to_baseline(ok, base) == []
    problems = compare_to_baseline(bad, base)
    assert len(problems) == 1 and "mixed" in problems[0] and "geomean" in problems[0]


def test_compare_to_baseline_gates_on_geomean_not_cells():
    """A single noisy cell must not trip the gate if the bench's
    geometric mean across k is still within tolerance."""
    base = {"speedups": {"mixed/k=8": 2.0, "mixed/k=512": 2.0}, "zero_alloc": {}}
    # one cell -30%, the other +30%: geomean ~ 0.95x of baseline -> pass
    cur = {"speedups": {"mixed/k=8": 1.4, "mixed/k=512": 2.6}, "zero_alloc": {}}
    assert compare_to_baseline(cur, base) == []
    # both cells -25%: geomean also -25% -> flagged
    bad = {"speedups": {"mixed/k=8": 1.5, "mixed/k=512": 1.5}, "zero_alloc": {}}
    assert compare_to_baseline(bad, base)


def test_compare_to_baseline_flags_lost_zero_alloc():
    base = {"speedups": {}, "zero_alloc": {"heapify_step/k=8": True}}
    bad = {"speedups": {}, "zero_alloc": {"heapify_step/k=8": False}}
    assert compare_to_baseline(bad, base)
    # a missing key (narrower sweep) is not a regression
    assert compare_to_baseline({"speedups": {}, "zero_alloc": {}}, base) == []


def test_compare_to_baseline_ignores_missing_ks():
    """CI quick runs may sweep fewer ks than the committed baseline."""
    base = {"speedups": {"mixed/k=8": 2.0, "mixed/k=512": 1.8}, "zero_alloc": {}}
    cur = {"speedups": {"mixed/k=8": 2.0}, "zero_alloc": {}}
    assert compare_to_baseline(cur, base) == []


def test_baseline_path_env_override(monkeypatch, tmp_path):
    target = tmp_path / "other.json"
    monkeypatch.setenv("REPRO_BENCH_BASELINE", str(target))
    assert baseline_path() == target


def test_drive_rejects_blocking_wait():
    from repro.sim import Condition, Wait

    def blocked():
        yield Wait(Condition("c"), predicate=lambda: False)

    with pytest.raises(RuntimeError, match="Wait would block"):
        _drive(blocked())


def test_alloc_loop_detects_retention():
    kept = []
    retained, peak = _alloc_loop(lambda i: kept.append(bytearray(1024)), 50)
    assert retained > 50 * 1000
    assert peak >= retained


def test_cli_bench_micro_exit_codes(tmp_path, monkeypatch, capsys):
    import functools

    import repro.bench.micro as micro
    from repro.cli import main

    monkeypatch.setenv("REPRO_BENCH_BASELINE", str(tmp_path / "BENCH_micro.json"))
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setattr(
        micro, "run_micro",
        functools.partial(micro.run_micro, prim_iters=50, op_iters=12),
    )
    # first run: no baseline yet -> writes it, exits 0
    assert main(["bench", "micro", "--quick", "--bench-ks", "8"]) == 0
    assert (tmp_path / "BENCH_micro.json").exists()
    capsys.readouterr()
    # second run against its own baseline: no regression possible beyond
    # jitter; gate allows 20%, so this should pass almost surely -- but
    # rather than rely on timing, verify via a doctored baseline
    doctored = json.loads((tmp_path / "BENCH_micro.json").read_text())
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    (tmp_path / "BENCH_micro.json").write_text(json.dumps(doctored))
    assert main(["bench", "micro", "--quick", "--bench-ks", "8"]) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION" in out
    # --update-baseline rewrites and exits 0 again
    assert main(["bench", "micro", "--quick", "--bench-ks", "8",
                 "--update-baseline"]) == 0


def test_default_ks_constant():
    assert MICRO_KS == (32, 128, 512)
