"""Workload generation and scaling tests."""

import numpy as np
import pytest

from repro.bench import workloads as w


def test_make_keys_random_range_and_determinism():
    a = w.make_keys(1000, "random", seed=3)
    b = w.make_keys(1000, "random", seed=3)
    assert np.array_equal(a, b)
    assert a.min() >= 0 and a.max() < (1 << w.KEY_BITS)


def test_make_keys_orders():
    asc = w.make_keys(500, "ascend", seed=1)
    desc = w.make_keys(500, "descend", seed=1)
    assert np.all(asc[:-1] <= asc[1:])
    assert np.all(desc[:-1] >= desc[1:])
    # same multiset, different order
    assert np.array_equal(np.sort(asc), np.sort(desc))


def test_make_keys_rejects_unknown_order():
    with pytest.raises(ValueError):
        w.make_keys(10, "shuffled")


def test_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "512")
    assert w.scale() == 512
    assert w.scaled_size("64M") == (1 << 26) // 512
    monkeypatch.setenv("REPRO_SCALE", "0")
    with pytest.raises(ValueError):
        w.scale()


def test_scaled_size_floor(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", str(1 << 30))
    assert w.scaled_size("1M") == 2048  # floor


def test_paper_sizes():
    assert w.PAPER_SIZES["64M"] == 1 << 26
    assert w.PAPER_SIZES["1M"] == 1 << 20


def test_gpu_batch_default_is_paper_config(monkeypatch):
    monkeypatch.delenv("REPRO_GPU_BATCH", raising=False)
    assert w.gpu_batch() == 1024
    monkeypatch.setenv("REPRO_GPU_BATCH", "256")
    assert w.gpu_batch() == 256


def test_size_label(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2048")
    assert w.size_label("64M") == "64M/2048"
