"""Benchmark driver tests (small workloads, verified runs)."""

import numpy as np
import pytest

from repro.baselines import TbbHeapPQ
from repro.bench import make_queue
from repro.bench.runner import PhaseTimes, drain, run_insert_then_delete, run_utilization
from repro.core import BGPQ
from repro.device import GpuContext


def small_bgpq():
    return BGPQ(GpuContext.default(blocks=4, threads_per_block=64),
                node_capacity=32, max_keys=1 << 14)


def test_phase_times_total():
    t = PhaseTimes(1.5, 2.5)
    assert t.total_ms == pytest.approx(4.0)


def test_run_insert_then_delete_verified():
    pq = small_bgpq()
    keys = np.random.default_rng(0).integers(0, 10**6, 512)
    times = run_insert_then_delete(pq, keys, n_threads=4, batch=32, verify=True)
    assert times.insert_ms > 0 and times.delete_ms > 0
    assert len(pq) == 0


def test_run_insert_then_delete_detects_loss():
    class LossyPQ(TbbHeapPQ):
        def deletemin_op(self, count):
            got = yield from super().deletemin_op(count)
            return got[:-1] if got.size > 1 else got  # drop a key

    pq = LossyPQ()
    keys = np.arange(64)
    with pytest.raises(AssertionError):
        run_insert_then_delete(pq, keys, n_threads=2, batch=8, verify=True)


def test_drain_returns_all_keys():
    pq = small_bgpq()
    keys = np.random.default_rng(1).integers(0, 10**6, 256)
    run_insert_then_delete(pq, keys, n_threads=2, batch=32, verify=True)
    # refill and drain via the helper
    from repro.sim import Engine

    eng = Engine()

    def filler():
        for i in range(0, keys.size, 32):
            yield from pq.insert_op(keys[i : i + 32])

    eng.spawn(filler())
    eng.run()
    out = drain(pq, batch=32, n_threads=3)
    assert np.array_equal(np.sort(out), np.sort(keys))


def test_run_utilization_preserves_occupancy():
    pq = small_bgpq()
    init = np.random.default_rng(2).integers(0, 10**6, 128)
    ms = run_utilization(pq, init, op_pairs=8, n_threads=2, batch=32)
    assert ms > 0
    # pairs keep occupancy constant
    assert len(pq) == 128


def test_run_utilization_empty_init():
    pq = small_bgpq()
    ms = run_utilization(pq, np.empty(0, np.int64), op_pairs=4, n_threads=2, batch=32)
    assert ms > 0


def test_make_queue_all_names():
    for name in ("BGPQ", "P-Sync", "TBB", "SprayList", "CBPQ", "LJSL"):
        pq, n_threads, batch = make_queue(name)
        assert pq.name in (name, "P-Sync")
        assert n_threads > 0 and batch > 0


def test_make_queue_unknown():
    with pytest.raises(ValueError):
        make_queue("FancyPQ")
