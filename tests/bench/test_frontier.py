"""Frontier bench: payload structure, determinism, gates, CLI exits."""

import json

import pytest

from repro.bench.frontier import (
    FRONTIER_POLICIES,
    FRONTIER_WIDTHS,
    frontier_baseline_path,
    frontier_gate_problems,
    render_frontier_delta,
    run_frontier,
)
from repro.bench.micro import compare_to_baseline

# small enough to run in well under a second, loaded enough that the
# elastic cell actually grows (the gate requires it)
TINY = dict(widths=(1, 2), policies=("hash", "shortest"), k=64,
            sessions=16, requests=8)


@pytest.fixture(scope="module")
def tiny_results():
    """One tiny real sweep shared by the structural tests."""
    return run_frontier(**TINY)


def test_payload_structure(tiny_results):
    r = tiny_results
    assert r["benchmark"] == "frontier"
    assert r["meta"]["widths"] == [1, 2]
    assert r["base_keys_per_us"] > 0
    assert len(r["rows"]) == 4  # 2 policies x 2 widths
    for row in r["rows"]:
        assert row["shards"] > 1
        assert row["keys_per_us"] > 0
        assert row["minimal_k"] <= row["relax_budget"]
        assert row["relax_ok"] and row["audit_ok"]
    assert set(r["speedups"]) == {
        "frontier/hash-w1", "frontier/hash-w2",
        "frontier/shortest-w1", "frontier/shortest-w2",
    }
    assert r["zero_alloc"] == {}  # comparator compatibility
    assert r["elastic"]["grows"] >= 1
    assert r["elastic"]["relax_ok"] and r["elastic"]["audit_ok"]


def test_sweep_is_bit_deterministic(tiny_results):
    again = run_frontier(**TINY)
    strip = lambda d: {k: v for k, v in d.items()
                       if k not in ("recorded_at", "meta")}
    assert json.dumps(strip(again), sort_keys=True, default=str) == json.dumps(
        strip(tiny_results), sort_keys=True, default=str
    )


def test_quick_clamps_the_grid():
    r = run_frontier(widths=(1, 2, 4), policies=("hash",), k=64,
                     sessions=64, requests=16, quick=True)
    assert r["meta"]["quick"]
    assert r["meta"]["sessions"] <= 16 and r["meta"]["requests"] <= 8
    assert max(r["meta"]["widths"]) <= 2  # width 4 clamped away


def test_gate_flags_verification_failures(tiny_results):
    assert frontier_gate_problems(tiny_results) == []
    broken = json.loads(json.dumps(tiny_results))
    broken["rows"][0]["relax_ok"] = False
    assert any("k-relaxed" in p for p in frontier_gate_problems(broken))
    unaudited = json.loads(json.dumps(tiny_results))
    unaudited["rows"][1]["audit_ok"] = False
    assert any("audit" in p for p in frontier_gate_problems(unaudited))
    stuck = json.loads(json.dumps(tiny_results))
    stuck["elastic"]["grows"] = 0
    assert any("never grew" in p for p in frontier_gate_problems(stuck))


def test_gating_reuses_micro_comparator(tiny_results):
    doctored = json.loads(json.dumps(tiny_results))
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    assert compare_to_baseline(tiny_results, doctored)
    assert compare_to_baseline(tiny_results, tiny_results) == []


def test_render_frontier_delta(tiny_results):
    doctored = json.loads(json.dumps(tiny_results))
    doctored["speedups"] = {k: v * 2 for k, v in doctored["speedups"].items()}
    table = render_frontier_delta(tiny_results, doctored)
    assert "hash-w1" in table and "0.50" in table
    assert "geomean ratio" in table
    failed = json.loads(json.dumps(tiny_results))
    failed["elastic"]["grows"] = 0
    assert "VERIFY FAILED" in render_frontier_delta(failed, doctored)


def test_baseline_path_env_override(monkeypatch, tmp_path):
    target = tmp_path / "other.json"
    monkeypatch.setenv("REPRO_BENCH_FRONTIER_BASELINE", str(target))
    assert frontier_baseline_path() == target


def test_cli_bench_frontier_exit_codes(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv(
        "REPRO_BENCH_FRONTIER_BASELINE", str(tmp_path / "BENCH_frontier.json")
    )
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    args = ["bench", "frontier", "--quick", "--shard-k", "64",
            "--shard-sessions", "16", "--shard-requests", "8"]
    # first run: no baseline yet -> writes it, exits 0
    assert main(args) == 0
    assert (tmp_path / "BENCH_frontier.json").exists()
    capsys.readouterr()
    # a doctored baseline makes the drift gate fail and saves the delta
    doctored = json.loads((tmp_path / "BENCH_frontier.json").read_text())
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    (tmp_path / "BENCH_frontier.json").write_text(json.dumps(doctored))
    assert main(args) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION" in out
    assert (tmp_path / "results" / "bench_frontier_delta.txt").exists()
    # --update-baseline rewrites and exits 0 again
    assert main(args + ["--update-baseline"]) == 0


def test_committed_baseline_matches_schema():
    """The repo-root BENCH_frontier.json is a real payload of this bench."""
    base = json.loads(frontier_baseline_path().read_text())
    assert base["benchmark"] == "frontier"
    assert base["meta"]["widths"] == list(FRONTIER_WIDTHS)
    assert base["meta"]["policies"] == list(FRONTIER_POLICIES)
    assert len(base["rows"]) == len(FRONTIER_WIDTHS) * len(FRONTIER_POLICIES)
    assert frontier_gate_problems(base) == []
    # load-aware placement dominates hash on the committed skewed sweep
    sp = base["speedups"]
    best_blind = max(v for k, v in sp.items() if k.startswith("frontier/hash"))
    best_aware = max(v for k, v in sp.items()
                     if k.startswith(("frontier/shortest", "frontier/d-choice")))
    assert best_aware > best_blind


def test_default_constants():
    assert FRONTIER_WIDTHS == (1, 2, 4)
    assert FRONTIER_POLICIES == ("hash", "spray", "shortest", "d-choice")
