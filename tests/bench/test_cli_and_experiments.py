"""CLI and experiment-registry tests (tiny scaled runs)."""

import numpy as np
import pytest

from repro.bench import (
    fig6_blocks_sweep,
    fig6_capacity_sweep,
    table2_insdel,
)
from repro.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SCALE", str(1 << 15))  # 64M -> 2048 keys
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "BGPQ" in out and "Data Parallelism" in out


def test_cli_insdel_single_cell(capsys):
    assert main(["insdel", "--sizes", "1M", "--orders", "random"]) == 0
    out = capsys.readouterr().out
    assert "B/T" in out and "BGPQ" in out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["fancy"])


def test_fig6_capacity_sweep_rows():
    rows = fig6_capacity_sweep(capacities=(32, 64), block_sizes=(128,), n_keys=2048)
    assert len(rows) == 2
    for r in rows:
        assert r["insert_ms"] > 0 and r["delete_ms"] > 0
        assert r["n_keys"] == 2048


def test_fig6_blocks_sweep_rows():
    rows = fig6_blocks_sweep(blocks_list=(1, 4), n_keys=2048)
    assert [r["blocks"] for r in rows] == [1, 4]
    # parallelism helps even at this tiny size
    assert rows[1]["insert_ms"] + rows[1]["delete_ms"] <= (
        rows[0]["insert_ms"] + rows[0]["delete_ms"]
    )


def test_table2_insdel_verify_mode():
    rows = table2_insdel(sizes=("1M",), orders=("random",), verify=True)
    assert len(rows) == 1
    r = rows[0]
    for q in ("TBB", "SprayList", "CBPQ", "LJSL", "P-Sync", "BGPQ"):
        assert r[q] > 0
    for ratio in ("B/T", "B/S", "B/C", "B/L", "B/P"):
        assert ratio in r
