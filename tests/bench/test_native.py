"""Native-engine perf harness: structure, zero-alloc gate, CLI exits."""

import json

import pytest

from repro.bench.micro import compare_to_baseline
from repro.bench.native import (
    NATIVE_KS,
    _alloc_loop,
    native_baseline_path,
    render_native_delta,
    run_native,
)

BENCHES = {"insert", "delete", "mixed", "bulk", "build", "knapsack", "astar"}


@pytest.fixture(scope="module")
def quick_results():
    """One tiny real run shared by the structural tests."""
    return run_native(ks=(8,), quick=True, op_iters=12, e2e_iters=1)


def test_payload_structure(quick_results):
    r = quick_results
    assert r["benchmark"] == "native"
    assert r["meta"]["quick"] is True
    assert {row["bench"] for row in r["rows"]} == BENCHES
    # one row per (bench, storage)
    assert len(r["rows"]) == 2 * len(BENCHES)
    for row in r["rows"]:
        assert row["storage"] in ("arena", "list")
        assert row["ops_per_sec"] > 0
    assert set(r["speedups"]) == {f"{b}/k=8" for b in BENCHES}
    assert list(r["zero_alloc"]) == ["mixed/k=8"]
    assert r["geomean_core"] > 0


def test_arena_steady_state_is_allocation_free(quick_results):
    """The acceptance bar, at a small k so CI stays fast: the arena
    backend's steady-state insert+deletemin loop retains less than one
    key-buffer across the loop."""
    assert quick_results["zero_alloc"]["mixed/k=8"] is True


def test_e2e_rows_skip_alloc_tracing(quick_results):
    for row in quick_results["rows"]:
        if row["bench"] in ("knapsack", "astar"):
            assert row["retained_bytes"] == -1


def test_gating_reuses_micro_comparator(quick_results):
    """BENCH_native.json gates through the same ratio comparator as
    micro; a doctored 10x baseline must flag every bench."""
    doctored = json.loads(json.dumps(quick_results))
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    problems = compare_to_baseline(quick_results, doctored)
    assert len(problems) == len(BENCHES)
    assert compare_to_baseline(quick_results, quick_results) == []


def test_render_native_delta(quick_results):
    doctored = json.loads(json.dumps(quick_results))
    doctored["speedups"] = {k: v * 2 for k, v in doctored["speedups"].items()}
    doctored["zero_alloc"] = {"mixed/k=8": True}
    table = render_native_delta(quick_results, doctored)
    for bench in BENCHES:
        assert bench in table
    assert "0.50" in table  # current/baseline ratio column
    assert "zero-alloc mixed/k=8" in table


def test_baseline_path_env_override(monkeypatch, tmp_path):
    target = tmp_path / "other.json"
    monkeypatch.setenv("REPRO_BENCH_NATIVE_BASELINE", str(target))
    assert native_baseline_path() == target


def test_alloc_loop_detects_retention():
    kept = []
    retained, peak = _alloc_loop(lambda i: kept.append(bytearray(1024)), 50)
    assert retained > 50 * 1000
    assert peak >= retained


def test_cli_bench_native_exit_codes(tmp_path, monkeypatch, capsys):
    import functools

    import repro.bench.native as native
    from repro.cli import main

    monkeypatch.setenv(
        "REPRO_BENCH_NATIVE_BASELINE", str(tmp_path / "BENCH_native.json")
    )
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    monkeypatch.setattr(
        native, "run_native",
        functools.partial(native.run_native, op_iters=12, e2e_iters=1),
    )
    # first run: no baseline yet -> writes it, exits 0
    assert main(["bench", "native", "--quick", "--bench-ks", "8"]) == 0
    assert (tmp_path / "BENCH_native.json").exists()
    capsys.readouterr()
    # a doctored baseline makes the gate fail and saves the delta table
    doctored = json.loads((tmp_path / "BENCH_native.json").read_text())
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    (tmp_path / "BENCH_native.json").write_text(json.dumps(doctored))
    assert main(["bench", "native", "--quick", "--bench-ks", "8"]) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION" in out
    assert (tmp_path / "results" / "bench_native_delta.txt").exists()
    # --update-baseline rewrites and exits 0 again
    assert main(["bench", "native", "--quick", "--bench-ks", "8",
                 "--update-baseline"]) == 0


def test_unknown_bench_target_exits_2():
    from repro.cli import main

    assert main(["bench", "nope"]) == 2


def test_default_ks_constant():
    assert NATIVE_KS == (32, 128, 512)
