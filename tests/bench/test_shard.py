"""Shard-fleet bench: payload structure, determinism, gates, CLI exits."""

import json

import pytest

from repro.bench.micro import compare_to_baseline
from repro.bench.shard import (
    SHARD_COUNTS,
    SHARD_WORKLOADS,
    _deal,
    render_shard_delta,
    run_shard,
    shard_baseline_path,
    shard_gate_problems,
)

TINY = dict(shard_counts=(1, 2), k=16, sessions=4, requests=4,
            workloads=("mixed",))


@pytest.fixture(scope="module")
def tiny_results():
    """One tiny real run shared by the structural tests."""
    return run_shard(**TINY)


def test_payload_structure(tiny_results):
    r = tiny_results
    assert r["benchmark"] == "shard"
    assert r["meta"]["workloads"] == ["mixed"]
    assert len(r["rows"]) == 2  # one per shard count
    for row in r["rows"]:
        assert row["workload"] == "mixed"
        assert row["keys_per_us"] > 0
        assert row["relax_ok"] and row["audit_ok"]
    assert set(r["speedups"]) == {"mixed/shards=2"}
    assert r["zero_alloc"] == {}  # comparator compatibility
    assert set(r["relaxation"]) == {"mixed/shards=1", "mixed/shards=2"}
    assert r["relaxation"]["mixed/shards=1"]["minimal_k"] == 1
    assert r["spraylist"]["keys_per_us"] > 0


def test_simulated_run_is_bit_deterministic(tiny_results):
    again = run_shard(**TINY)
    strip = lambda d: {k: v for k, v in d.items()
                       if k not in ("recorded_at", "meta")}
    assert json.dumps(strip(again), sort_keys=True, default=str) == json.dumps(
        strip(tiny_results), sort_keys=True, default=str
    )


def test_gate_flags_speedup_floor_and_relaxation(tiny_results):
    clean = json.loads(json.dumps(tiny_results))
    clean["mixed_4shard"] = 2.4
    assert shard_gate_problems(clean) == []
    slow = json.loads(json.dumps(clean))
    slow["mixed_4shard"] = 1.4
    problems = shard_gate_problems(slow)
    assert any("below" in p for p in problems)
    broken = json.loads(json.dumps(clean))
    broken["relaxation"]["mixed/shards=2"]["ok"] = False
    problems = shard_gate_problems(broken)
    assert any("k-relaxed" in p for p in problems)


def test_gating_reuses_micro_comparator(tiny_results):
    doctored = json.loads(json.dumps(tiny_results))
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    assert compare_to_baseline(tiny_results, doctored)
    assert compare_to_baseline(tiny_results, tiny_results) == []


def test_render_shard_delta(tiny_results):
    doctored = json.loads(json.dumps(tiny_results))
    doctored["speedups"] = {k: v * 2 for k, v in doctored["speedups"].items()}
    table = render_shard_delta(tiny_results, doctored)
    assert "mixed" in table and "0.50" in table
    failed = json.loads(json.dumps(tiny_results))
    failed["relaxation"]["mixed/shards=2"]["ok"] = False
    assert "relaxation FAILED" in render_shard_delta(failed, doctored)


def test_app_traces_ride_the_fleet():
    r = run_shard(shard_counts=(1, 2), k=32, sessions=8, requests=4,
                  quick=True, workloads=("knapsack", "astar"))
    by_cell = {(row["workload"], row["shards"]): row for row in r["rows"]}
    assert set(by_cell) == {("knapsack", 1), ("knapsack", 2),
                            ("astar", 1), ("astar", 2)}
    for row in by_cell.values():
        assert row["keys_in"] > 1  # real frontier batches, not just the root
        assert row["relax_ok"] and row["audit_ok"]
    assert r["spraylist"] is None  # mixed not benched here


def test_placement_section_gated_on_full_grid(tiny_results):
    # TINY never reaches GATE_SHARDS, so no skewed comparison is run
    assert tiny_results["placement"] is None
    r = run_shard(shard_counts=(1, 4), k=32, sessions=8, requests=4,
                  quick=True, workloads=("mixed",))
    placement = r["placement"]
    assert set(placement["cells"]) == {"hash", "spray", "shortest", "d-choice"}
    for cell in placement["cells"].values():
        assert cell["ok"]
        assert cell["speedup"] > 0 and cell["minimal_k"] >= 0
    assert placement["best_load_aware"] in ("shortest", "d-choice")
    # the placement sweep stays out of `speedups` so drift gating on the
    # main table is unaffected
    assert not any(k.startswith("placement") for k in r["speedups"])


def test_deal_round_robin_preserves_order():
    trace = [("insert", i) for i in range(7)]
    scripts = _deal(trace, 3)
    assert [op for s in scripts for op in s]  # nothing dropped
    assert sorted(x for s in scripts for _, x in s) == list(range(7))
    for s in scripts:
        assert [x for _, x in s] == sorted(x for _, x in s)


def test_baseline_path_env_override(monkeypatch, tmp_path):
    target = tmp_path / "other.json"
    monkeypatch.setenv("REPRO_BENCH_SHARD_BASELINE", str(target))
    assert shard_baseline_path() == target


def test_cli_bench_shard_exit_codes(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv(
        "REPRO_BENCH_SHARD_BASELINE", str(tmp_path / "BENCH_shard.json")
    )
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    args = ["bench", "shard", "--quick", "--shard-counts", "1,2,4",
            "--shard-k", "32", "--shard-sessions", "8",
            "--shard-requests", "4"]
    # first run: no baseline yet -> writes it, exits 0
    assert main(args) == 0
    assert (tmp_path / "BENCH_shard.json").exists()
    capsys.readouterr()
    # a doctored baseline makes the drift gate fail and saves the delta
    doctored = json.loads((tmp_path / "BENCH_shard.json").read_text())
    doctored["speedups"] = {k: v * 10 for k, v in doctored["speedups"].items()}
    (tmp_path / "BENCH_shard.json").write_text(json.dumps(doctored))
    assert main(args) == 1
    out = capsys.readouterr().out
    assert "PERF REGRESSION" in out
    assert (tmp_path / "results" / "bench_shard_delta.txt").exists()
    # --update-baseline rewrites and exits 0 again
    assert main(args + ["--update-baseline"]) == 0


def test_committed_baseline_matches_schema():
    """The repo-root BENCH_shard.json is a real payload of this bench."""
    base = json.loads(shard_baseline_path().read_text())
    assert base["benchmark"] == "shard"
    assert base["mixed_4shard"] >= 2.0
    assert set(base["meta"]["workloads"]) == set(SHARD_WORKLOADS)
    assert base["meta"]["shard_counts"] == list(SHARD_COUNTS)
    for cell in base["relaxation"].values():
        assert cell["ok"]


def test_default_constants():
    assert SHARD_COUNTS == (1, 2, 4, 8)
    assert SHARD_WORKLOADS == ("mixed", "knapsack", "astar")
