"""Repo-wide test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_registry(monkeypatch, tmp_path):
    """Keep the run registry out of the working tree during tests.

    CLI entrypoints record into ``$REPRO_REGISTRY_DIR`` (default
    ``runs/`` under the CWD); without this, any test driving ``main()``
    would drop registry state into the repository.  Tests that need a
    specific registry location override the variable themselves.
    """
    monkeypatch.setenv("REPRO_REGISTRY_DIR", str(tmp_path / "test-registry"))
