"""Docs health: every relative markdown link must resolve.

Wraps scripts/check_docs_links.py (the CI gate) so broken links fail
the ordinary test suite too, and sanity-checks the checker itself
against a deliberately broken file.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "scripts" / "check_docs_links.py"


def test_all_relative_doc_links_resolve():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_checker_flags_broken_links(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "ok.md").write_text("see [docs](docs/real.md) and [web](https://x)\n")
    (tmp_path / "docs" / "real.md").write_text("[back](../ok.md) [gone](missing.md)\n")
    proc = subprocess.run(
        [sys.executable, str(CHECKER), str(tmp_path)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "missing.md" in proc.stdout
    assert "ok.md" not in proc.stdout.replace("../ok.md", "")


def test_repo_docs_exist():
    for rel in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                "docs/ARCHITECTURE.md", "docs/OBSERVABILITY.md"):
        assert (REPO / rel).exists(), rel
