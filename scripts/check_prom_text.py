#!/usr/bin/env python
"""Validate Prometheus text-exposition files (CI gate).

Usage::

    PYTHONPATH=src python scripts/check_prom_text.py FILE [FILE ...]

Exit 0 when every file passes the structural checks in
:func:`repro.obs.metrics.validate_prometheus_text` (HELP/TYPE headers
before samples, parseable label sets, finite values, cumulative
non-decreasing histogram buckets ending in ``+Inf`` consistent with
``_count``); exit 1 listing every problem otherwise.  CI runs this
over the ``.prom`` artifacts of ``repro metrics`` and
``repro serve --metrics`` so an exposition drift breaks the build, not
the downstream Prometheus scrape.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.obs.metrics import validate_prometheus_text


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rc = 0
    for name in argv:
        path = Path(name)
        try:
            text = path.read_text()
        except OSError as err:
            print(f"{path}: cannot read ({err})", file=sys.stderr)
            rc = 1
            continue
        problems = validate_prometheus_text(text)
        if problems:
            rc = 1
            print(f"{path}: INVALID prometheus exposition:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
        else:
            n = sum(
                1
                for line in text.splitlines()
                if line.strip() and not line.startswith("#")
            )
            print(f"{path}: ok ({n} samples)")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
