#!/usr/bin/env python
"""Validate Brendan-Gregg collapsed-stack files (CI gate).

Usage::

    PYTHONPATH=src python scripts/check_collapsed_stack.py FILE [FILE ...]

Exit 0 when every file parses as ``frame;frame;... <int>`` lines
(:func:`repro.obs.flame.validate_collapsed`); exit 1 listing every
problem otherwise.  CI runs this over the ``repro trace flame``
artifact so a format drift breaks the build, not the downstream
flamegraph.pl / speedscope consumers.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.obs.flame import validate_collapsed


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    rc = 0
    for name in argv:
        path = Path(name)
        try:
            text = path.read_text()
        except OSError as err:
            print(f"{path}: cannot read ({err})", file=sys.stderr)
            rc = 1
            continue
        problems = validate_collapsed(text)
        if problems:
            rc = 1
            print(f"{path}: INVALID collapsed-stack format:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
        else:
            n = sum(1 for line in text.splitlines() if line.strip())
            print(f"{path}: ok ({n} stacks)")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
