"""Regenerate EXPERIMENTS.md from the archived bench_results/*.json.

Run the benchmarks first (``pytest benchmarks/ --benchmark-only``),
then ``python scripts/make_experiments_md.py`` to refresh the
paper-vs-measured record.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS = Path("bench_results")
OUT = Path("EXPERIMENTS.md")

PAPER_INSDEL_64M = {"B/T": 81.3, "B/S": 13.3, "B/C": 20.5, "B/L": 50.9, "B/P": 9.2}
PAPER_INSDEL_8M = {"B/T": 65.3, "B/S": 9.3, "B/C": 22.1, "B/L": 37.0, "B/P": 8.6}
PAPER_INSDEL_1M = {"B/T": 53.0, "B/S": 10.2, "B/C": 21.6, "B/L": 15.1, "B/P": 8.9}
PAPER_KS = {"B/T": (64.8, 100.1), "B/S": (45.2, 58.0), "B/L": (81.3, 129.8)}
PAPER_ASTAR = {"B/T": (24.7, 46.6), "B/S": (12.4, 23.3), "B/L": (19.0, 32.6)}


def load(name: str) -> dict:
    path = RESULTS / f"{name}.json"
    if not path.exists():
        raise SystemExit(f"missing {path}; run `pytest benchmarks/ --benchmark-only` first")
    return json.loads(path.read_text())


def md_table(rows: list[dict], cols: list[str]) -> str:
    def fmt(v):
        if isinstance(v, float):
            return f"{v:,.2f}" if v < 100 else f"{v:,.0f}"
        return str(v)

    lines = ["| " + " | ".join(cols) + " |", "|" + "---|" * len(cols)]
    for r in rows:
        lines.append("| " + " | ".join(fmt(r.get(c, "")) for c in cols) + " |")
    return "\n".join(lines)


def main() -> None:
    insdel = load("table2_insdel")
    util = load("table2_util")
    ks = load("table2_knapsack")
    astar = load("table2_astar")
    fig6ab = load("fig6ab_capacity")
    fig6c = load("fig6c_blocks")
    scale = insdel["meta"].get("scale", "?")

    parts: list[str] = []
    a = parts.append
    a("# EXPERIMENTS — paper vs. measured\n")
    a(f"All runs on the simulated machines of DESIGN.md §2, workloads scaled by "
      f"1/{scale} (`REPRO_SCALE={scale}`); regenerate with "
      f"`pytest benchmarks/ --benchmark-only && python scripts/make_experiments_md.py`.\n")
    a("Absolute milliseconds are *simulated* device/host time, not expected to "
      "match the paper's wall clock; the claims under reproduction are the "
      "speedup ratios (columns `B/x` = baseline time / BGPQ time) and their "
      "trends.\n")

    a("## Table 1 — feature matrix\n")
    a("Regenerated from each implementation's `features()` declaration "
      "(`benchmarks/test_table1_features.py`); matches the paper's Table 1 "
      "cell-for-cell, with STSL and GFSL carried as literature rows.\n")

    a("## Table 2 — 'Ins & Del' (`benchmarks/test_table2_insdel.py`)\n")
    cols = ["size", "order", "n_keys", "TBB", "SprayList", "CBPQ", "LJSL",
            "P-Sync", "BGPQ", "B/T", "B/S", "B/C", "B/L", "B/P"]
    a(md_table(insdel["rows"], cols))
    big = [r for r in insdel["rows"] if r["size"] == "64M"]
    mean = {k: sum(r[k] for r in big) / len(big) for k in PAPER_INSDEL_64M}
    a("\nPaper (64M, mean over orders) vs measured (scaled 64M):\n")
    a(md_table(
        [
            {"": "paper", **PAPER_INSDEL_64M},
            {"": "measured", **{k: round(v, 1) for k, v in mean.items()}},
        ],
        ["", "B/T", "B/S", "B/C", "B/L", "B/P"],
    ))
    a("\n**Shape held:** BGPQ wins every cell; baseline ordering "
      "P-Sync < SprayList ≈ CBPQ < LJSL < TBB matches the paper; the B/T "
      "ratio grows with workload size (paper 46→81x; measured "
      f"{insdel['rows'][0]['B/T']:.0f}→{big[0]['B/T']:.0f}x). The smaller "
      "scaled cells (1M/8M → a handful of 1024-key batches) are degenerate "
      "for ratio magnitudes but preserve the trend. SprayList sits slightly "
      "above CBPQ here (paper: slightly below); both remain in the "
      "10-40x band.\n")

    a("## Table 2 — 'Util.' (`benchmarks/test_table2_util.py`)\n")
    a(md_table(util["rows"], ["init", "n_init", "key_pairs", "TBB", "SprayList",
                              "LJSL", "BGPQ", "B/T", "B/S", "B/L"]))
    a("\n**Shape held:** BGPQ flat across occupancy (paper: 'maintains at the "
      "same level'); SprayList worst on the empty queue (paper: 12x collapse "
      "from spray collisions; measured ~1.4x — the spray region p·log³p "
      "cannot be scaled down with the workload, so the scaled contrast is "
      "milder); LJSL flat; TBB degrades as depth grows (paper 36%; the "
      "scaled depth ratio exaggerates this to ~2.4x).\n")

    a("## Table 2 — '0-1 KS' (`benchmarks/test_table2_knapsack.py`)\n")
    a(md_table(ks["rows"], ["paper_items", "items", "family", "BGPQ", "optimal",
                            "nodes", "TBB", "SprayList", "LJSL", "B/T", "B/S", "B/L"]))
    a(f"\nPaper bands: B/T {PAPER_KS['B/T'][0]}-{PAPER_KS['B/T'][1]}x, "
      f"B/S {PAPER_KS['B/S'][0]}-{PAPER_KS['B/S'][1]}x, "
      f"B/L {PAPER_KS['B/L'][0]}-{PAPER_KS['B/L'][1]}x. Measured: "
      f"B/T {min(r['B/T'] for r in ks['rows']):.0f}-{max(r['B/T'] for r in ks['rows']):.0f}x, "
      f"B/S {min(r['B/S'] for r in ks['rows']):.0f}-{max(r['B/S'] for r in ks['rows']):.0f}x, "
      f"B/L {min(r['B/L'] for r in ks['rows']):.0f}-{max(r['B/L'] for r in ks['rows']):.0f}x.\n")
    a("**Shape held:** BGPQ dominates every instance; times zig-zag with "
      "item count exactly as the paper's do (tree size is instance-, not "
      "size-, monotone); all solvers agree with the DP optimum. Scaled "
      "trees (10-65K explored nodes vs the paper's 2^200+ search spaces) "
      "compress the absolute ratios.\n")

    a("## Table 2 — 'A-star' (`benchmarks/test_table2_astar.py`)\n")
    a(md_table(astar["rows"], ["grid", "side", "obstacles", "BGPQ", "cost",
                               "nodes", "TBB", "SprayList", "LJSL",
                               "B/T", "B/S", "B/L"]))
    a(f"\nPaper bands: B/T {PAPER_ASTAR['B/T'][0]}-{PAPER_ASTAR['B/T'][1]}x, "
      f"B/S {PAPER_ASTAR['B/S'][0]}-{PAPER_ASTAR['B/S'][1]}x, "
      f"B/L {PAPER_ASTAR['B/L'][0]}-{PAPER_ASTAR['B/L'][1]}x.\n")
    a("**Shape held with a scale caveat:** BGPQ beats TBB on every grid "
      "(7.2-7.6x measured vs the paper's 24.7-46.6x). The paper's grids "
      "have frontiers of 10^4-10^5 open nodes where every CPU queue is "
      "throughput-bound; the scaled 96-256 grids hold only a few hundred "
      "open nodes, so BGPQ's speculative full-batch retrieval (§6.5's "
      "load-balancing choice) wastes most of its work and the "
      "serialisation-light designs (LJSL, SprayList) match or beat it "
      "here — an inversion that disappears as the frontier grows. The "
      "contention-bound TBB comparison, the mechanism behind the paper's "
      "speedups, survives scaling; the B/T ratio is flat rather than "
      "growing (paper 29→47x) for the same frontier reason.\n")

    a("## Figure 6 — design choice sweeps (`benchmarks/test_fig6_design_choice.py`)\n")
    a("### 6a/6b: node capacity x block size (time in ms)\n")
    a(md_table(fig6ab["rows"], ["block_size", "capacity", "n_keys",
                                "insert_ms", "delete_ms"]))
    a("\n**Shape held:** larger node capacity is faster for both operations "
      "(intra-node parallelism); doubling the block to 1024 threads stops "
      "helping (sync overhead grows with resident warps) — the paper picks "
      "512 threads / 1024 keys, and so does the measured sweet spot.\n")
    a("### 6c: number of thread blocks\n")
    a(md_table(fig6c["rows"], ["blocks", "capacity", "n_keys",
                               "insert_ms", "delete_ms"]))
    a("\n**Shape held (axis compressed):** more blocks help until root-lock "
      "contention absorbs the gain. The saturation point scales with "
      "(heapify depth x per-level cost)/(root critical section); the "
      "paper's depth-17 heap saturates near 128 blocks, the scaled depth-9 "
      "heap near 8 — same curve, earlier knee.\n")

    a("## Ablations (`benchmarks/test_ablations.py`)\n")
    ab_p = load("ablation_pbuffer")["rows"]
    a("* **pBuffer batching** — heapifies per 1K keys stays ~constant as "
      "insert granularity shrinks 1x→16x below the node capacity "
      f"(measured {', '.join(str(round(r['heapify_per_1k_keys'], 2)) for r in ab_p)} "
      "per granularity step): the partial buffer coalesces sub-batch "
      "inserts into full-node heapifies, the design's stated purpose (§4.1).")
    ab_c = load("ablation_collaboration")["rows"]
    on = next(r for r in ab_c if r["collaboration"] in (True, "True"))
    off = next(r for r in ab_c if r["collaboration"] in (False, "False"))
    a(f"* **TARGET/MARKED collaboration** — {on['steals']} steals fired under "
      f"mixed load; time with collaboration {on['time_ms']:.2f}ms vs "
      f"{off['time_ms']:.2f}ms without (§4.3's optimisation is active and "
      "not a regression).")
    ab_a = load("ablation_astar_batch")["rows"]
    a("* **Batched A* batch size** — expansions grow with batch "
      f"({', '.join(str(r['expanded']) for r in ab_a)} at batch "
      f"{', '.join(str(r['batch']) for r in ab_a)}) while simulated time "
      "stays within a small factor: amortisation offsets speculation.")
    ab_s = load("ablation_spray_relaxation")["rows"][0]
    a(f"* **SprayList relaxation** — worst deleted rank {ab_s['worst_rank']} "
      f"out of bound p·log³p = {ab_s['bound']}: the relaxed semantics are "
      "real, quantified, and inside Alistarh et al.'s guarantee.")
    try:
        ab_d = {r["variant"]: r for r in load("ablation_insert_direction")["rows"]}
        ratio = ab_d["bottom_up"]["time_ms"] / ab_d["top_down"]["time_ms"]
        a(f"* **Insert direction (§3.3)** — bottom-up insertion runs at "
          f"{ratio:.2f}x the top-down time on the insert benchmark: the "
          "paper's 'performance is similar' claim reproduced.")
    except SystemExit:
        pass
    try:
        mem = load("memory_per_key")["rows"]
        per = {r["queue"]: r["bytes_per_key"] for r in mem}
        a(f"* **Memory footprint** — bytes/key at equal occupancy: "
          + ", ".join(f"{q} {v:.1f}" for q, v in per.items())
          + ". Heap designs sit at k + O(1); skip lists pay the ~2x tower "
            "overhead the paper's §2.1 argues disqualifies them on GPUs.")
    except SystemExit:
        pass

    base = Path("BENCH_micro.json")
    if base.exists():
        micro = json.loads(base.read_text())
        speed = micro.get("speedups", {})
        mixed = {k: v for k, v in speed.items() if k.startswith("mixed/")}
        a("\n## Host-side microbenchmarks (`python -m repro bench micro`)\n")
        a("Unlike everything above, these numbers are *host* wall-clock, not "
          "simulated device time: they compare the arena storage backend "
          "(structure-of-arrays `NodeArena` + fused in-place SORT_SPLIT, "
          "docs/ARCHITECTURE.md §6) against the legacy per-node-ndarray "
          "backend (`storage=\"list\"`) on the simulator's own hot paths. "
          "`BENCH_micro.json` is the committed baseline; CI re-runs the "
          "suite with `--quick` and fails on a >20% geometric-mean speedup "
          "regression or a lost zero-allocation flag. Only speedup *ratios* "
          "are gated — absolute ops/sec are machine-dependent.\n")
        if mixed:
            cells = sorted(mixed.items(), key=lambda kv: int(kv[0].split("=")[1]))
            a("Baseline mixed-workload speedups (arena over list): "
              + ", ".join(f"{k.split('/')[1]}: {v:.2f}x" for k, v in cells)
              + "; steady-state heapify on the arena backend is "
                "allocation-free (tracemalloc-verified with floor "
                "calibration) at every k swept.\n")

    nbase = Path("BENCH_native.json")
    if nbase.exists():
        native = json.loads(nbase.read_text())
        nspeed = native.get("speedups", {})
        a("\n## Native engine benchmarks (`python -m repro bench native`)\n")
        a("Host wall-clock again, for `NativeBGPQ` — the sequential engine "
          "behind the knapsack/A*/SSSP drivers and the P-Sync baseline — "
          "comparing its arena backend (payload-aware `NodeArena`, fused "
          "in-place SORT_SPLIT, docs/ARCHITECTURE.md §6) against the legacy "
          "allocate-per-merge `storage=\"list\"` path. `BENCH_native.json` "
          "is the committed baseline; refresh it deliberately with "
          "`python -m repro bench native --update-baseline` (the suite runs "
          "twice and keeps the conservative minimum). CI gates `--quick` "
          "runs on the same >20% geomean-ratio rule and uploads a "
          "current-vs-baseline delta table when the gate fails.\n")
        gm = native.get("geomean_core")
        if gm:
            a(f"Baseline core-queue-op geomean (insert/delete/mixed/bulk/"
              f"build over k ∈ {{{', '.join(str(k) for k in native.get('meta', {}).get('ks', []))}}}): "
              f"**{gm:.2f}x arena over list** (acceptance bar: ≥1.5x).\n")
        for bench in ("insert", "delete", "mixed", "bulk", "build",
                      "knapsack", "astar"):
            cells = sorted(
                ((k, v) for k, v in nspeed.items() if k.startswith(f"{bench}/")),
                key=lambda kv: int(kv[0].split("=")[1]),
            )
            if cells:
                a(f"* {bench}: "
                  + ", ".join(f"{k.split('/')[1]}: {v:.2f}x" for k, v in cells))
        za = native.get("zero_alloc", {})
        if za and all(za.values()):
            a("\nThe steady-state mixed loop (full-batch insert + deletemin, "
              "both heapifying) retains zero data arrays on the arena "
              "backend at every k swept (tracemalloc-verified after garbage "
              "collection; the list backend retains 47-378 KB scaling with "
              "k). The end-to-end knapsack/A* cells are dominated by driver "
              "kernels, so their ratios hover near 1x by design — they "
              "guard engine integration, not speedup.\n")

    wbase = Path("BENCH_wall.json")
    if wbase.exists():
        wallb = json.loads(wbase.read_text())
        wmeta = wallb.get("meta", {})
        wsp = wallb.get("speedups", {})
        floor = wallb.get("floor", {})
        a("\n## Wall-clock fast path (`python -m repro bench native --wall`)\n")
        a("Host wall-clock one more time, now comparing *kernel backends*: "
          "the NumPy reference vs the compiled C core "
          "(`repro/device/ckern.c`, built on first use; AVX-512 merge "
          "network where the host supports it) vs the compiled backend "
          "with the thread-pool presort, all against the legacy "
          "`storage=\"list\"` reference. Every backend is bit-identical by "
          "contract (`tests/primitives/test_kernel_parity.py`); only the "
          "clock differs. `BENCH_wall.json` commits the speedup *ratios* "
          "(machine-portable); hosts without a C compiler gate only the "
          "numpy lanes.\n")
        a(f"Recorded on a {wmeta.get('cpu_count')}-core host, backends "
          f"{', '.join(wmeta.get('compiled_available', [])) or 'numpy only'}; "
          "ratios over the list reference:\n")
        variants = [v for v in wmeta.get("variants", []) if v != "list"]
        wrows = []
        for bench in ("insert", "delete", "mixed", "bulk", "build"):
            row = {"bench": bench}
            for variant in variants:
                cells = {
                    key.rsplit("=", 1)[1]: val
                    for key, val in wsp.items()
                    if key.startswith(f"{bench}:{variant}/")
                }
                if cells:
                    row[variant] = " / ".join(
                        f"{cells[k]:.1f}x" for k in sorted(cells, key=int)
                    )
            wrows.append(row)
        a(md_table(wrows, ["bench"] + variants))
        a(f"\nCells are speedups at k ∈ {{{', '.join(str(k) for k in wmeta.get('ks', []))}}}. "
          "**Gate:** CI re-runs `--quick` on both backends against the "
          "committed ratios (>20% geomean tolerance per lane), and the "
          "full run enforces the acceptance floor — compiled-parallel "
          f"`{floor.get('bench')}` at k={floor.get('k')} must clear "
          f"**≥{floor.get('min_speedup', 0):.0f}x** over the list "
          "reference.\n")

    sbase = Path("BENCH_shard.json")
    fbase = Path("BENCH_frontier.json")
    if sbase.exists() and fbase.exists():
        shard = json.loads(sbase.read_text())
        frontier = json.loads(fbase.read_text())
        fmeta = frontier.get("meta", {})
        a("\n## Fleet frontier: quality vs throughput "
          "(`python -m repro bench shard|frontier`)\n")
        a("Back to *simulated* time (deterministic, machine-portable): "
          "the sharded fleet gives up exact deletemin order for "
          "shard-parallel service, and these two committed baselines "
          "measure exactly what that trade buys (docs/FLEET.md). "
          f"Workload: skewed mixed (Zipf-ish skew={fmeta.get('skew')}) at "
          f"k={fmeta.get('k')}, {fmeta.get('sessions')} sessions x "
          f"{fmeta.get('requests')} requests, "
          f"{fmeta.get('shards')} shards vs a 1-shard exact baseline. "
          "Each cell reports speedup over the single shard and the "
          "*measured* `minimal_k` — the smallest relaxation parameter its "
          "recorded history satisfies (lower = better-ordered deletes); "
          "every cell must pass the derived relaxation budget and a full "
          "fleet audit to land here.\n")
        fsp = frontier.get("speedups", {})
        fmk = {
            f"frontier/{r['policy']}-w{r['spray_width']}": r["minimal_k"]
            for r in frontier.get("rows", [])
        }
        widths = fmeta.get("widths", [])
        frows = []
        for policy in fmeta.get("policies", []):
            row = {"policy": policy}
            for w in widths:
                key = f"frontier/{policy}-w{w}"
                if key in fsp:
                    row[f"w={w}"] = f"{fsp[key]:.2f}x / {fmk[key]:,}"
            frows.append(row)
        a(md_table(frows, ["policy"] + [f"w={w}" for w in widths]))
        a("\nCells are `speedup / minimal_k` per probe width. **Shape:** "
          "load-blind `hash` is dominated everywhere on skewed keys (hot "
          "keys pin to one shard); the load-aware policies win both axes "
          "at once — balanced shards are faster *and* keep every shard "
          "minimum near the global minimum — and both peak at width 2 "
          "(wider probes cost reads and, for d-choice, re-herd "
          "placement).\n")
        placement = shard.get("placement") or {}
        cells = placement.get("cells", {})
        if cells:
            a("The shard bench gates the same story: "
              + ", ".join(f"{p} {c['speedup']:.2f}x" for p, c in cells.items())
              + f" at {placement.get('shards')} shards "
              f"(best load-aware: {placement.get('best_load_aware')} "
              f"{placement.get('best_speedup'):.2f}x; CI floor 4.48x and "
              "≥ hash).\n")
        elastic = frontier.get("elastic") or {}
        if elastic:
            a(f"Elastic cell: starting at 2 shards under the same load, an "
              f"`ElasticController` grew the fleet {elastic.get('grows')} "
              f"time(s) (final action trace: "
              f"{len(elastic.get('actions', []))} reshard actions, "
              f"{elastic.get('migrated'):,} keys migrated), reaching "
              f"{fsp.get('frontier/shortest-w2', 0):.2f}x-class throughput "
              f"({elastic.get('keys_per_us')} keys/us) while the history "
              "passed the migration-aware relaxation budget "
              f"(minimal_k={elastic.get('minimal_k'):,} ≤ "
              f"budget={elastic.get('relax_budget'):,}) and a full "
              "conservation audit mid-reshard.\n")

    abase = Path("BENCH_analysis.json")
    if abase.exists():
        analysis = json.loads(abase.read_text())
        attr = analysis.get("attribution", {})
        mk = float(analysis.get("makespan_ns", 0.0)) or 1.0
        wl = analysis.get("workload", {})
        a("\n## Critical-path composition (`python -m repro trace analyze`)\n")
        a("`BENCH_analysis.json` pins where the makespan of the canonical "
          f"traced mixed workload (threads={wl.get('threads', '?')}, "
          f"k={wl.get('k', '?')}, seed={wl.get('seed', '?')}) goes, phase "
          "by phase, on the Coz-style critical path "
          "(docs/OBSERVABILITY.md § Analysis layer). These are *simulated* "
          "nanoseconds — deterministic and machine-independent — so when "
          "the host-timed micro gate fails, `repro bench micro` diffs the "
          "current composition against this baseline and names the phase "
          "that regressed.\n")
        order = sorted(attr.items(), key=lambda kv: -kv[1])
        a("Baseline attribution: "
          + ", ".join(f"{p} {v / mk:.1%}" for p, v in order if v > 0)
          + " — the root/pBuffer lock dominates, the paper's §4 "
            "serialization story at full k.\n")
    a("")

    OUT.write_text("\n".join(parts) + "\n")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
