#!/usr/bin/env python
"""Check that every relative markdown link in the repo's docs resolves.

Scans the tracked ``*.md`` files (repo root + docs/) for inline links
``[text](target)``, resolves each relative target — optionally with a
``#fragment`` — against the file's directory, and reports the ones that
point nowhere.  External links (http/https/mailto) and pure in-page
anchors (``#section``) are skipped; anchor *existence* is not checked,
only file existence, so docs can link to generated sections.

Exit status: 0 when every link resolves, 1 otherwise (CI gate; also
wrapped by ``tests/test_docs_links.py`` so it runs in the local suite).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) — excluding images' leading "!" is not needed: image
# targets should resolve too.  Nested brackets in the text are not
# handled; none of the repo's docs use them.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: verbatim retrieval/scaffold artifacts, not curated docs — they may
#: quote markdown (with its links) from sources this repo doesn't carry
_SKIP_FILES = {"PAPERS.md", "SNIPPETS.md", "PAPER.md", "ISSUE.md"}


def iter_doc_files(root: Path):
    for path in sorted(root.glob("*.md")):
        if path.name not in _SKIP_FILES:
            yield path
    for sub in ("docs",):
        yield from sorted((root / sub).glob("**/*.md"))


def check_file(path: Path, root: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path.relative_to(root)}:{line}: broken link -> {target}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = []
    n_files = 0
    for doc in iter_doc_files(root):
        n_files += 1
        problems.extend(check_file(doc, root))
    if problems:
        print(f"{len(problems)} broken doc link(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"all relative links resolve across {n_files} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
