"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works on
environments without the `wheel` package (legacy editable install).
"""

from setuptools import setup

setup()
