"""Quickstart: BGPQ on the simulated GPU, in ~40 lines.

Builds the paper's default configuration (128 thread blocks x 512
threads, 1024-key batch nodes), runs concurrent batched inserts and
deletions through the discrete-event simulator, and prints the
simulated time plus the collaboration statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BGPQ
from repro.device import GpuContext
from repro.sim import Engine

N_KEYS = 1 << 16
BATCH = 1024
BLOCKS = 32


def main() -> None:
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 1 << 30, size=N_KEYS, dtype=np.int64)

    ctx = GpuContext.default(blocks=BLOCKS, threads_per_block=512)
    pq = BGPQ(ctx, node_capacity=BATCH, max_keys=2 * N_KEYS)

    # Phase 1: all thread blocks insert their share of the keys.
    eng = Engine(seed=1)

    def inserter(block_id: int):
        mine = keys[block_id::BLOCKS]
        for i in range(0, mine.size, BATCH):
            yield from pq.insert_op(mine[i : i + BATCH])

    for b in range(BLOCKS):
        eng.spawn(inserter(b), name=f"blk{b}")
    insert_ms = eng.run() / 1e6
    print(f"inserted {N_KEYS} keys in {insert_ms:.3f} simulated ms "
          f"({N_KEYS / insert_ms / 1e3:.0f} Mkeys/s)")

    # Phase 2: drain concurrently; deletions come out globally sorted
    # per batch (smallest keys first).
    eng2 = Engine(seed=2)
    out = []

    def deleter(block_id: int):
        while True:
            got = yield from pq.deletemin_op(BATCH)
            if got.size == 0:
                return
            out.append(got)

    for b in range(BLOCKS):
        eng2.spawn(deleter(b), name=f"del{b}")
    delete_ms = eng2.run() / 1e6
    print(f"deleted  {N_KEYS} keys in {delete_ms:.3f} simulated ms")

    drained = np.sort(np.concatenate(out))
    assert np.array_equal(drained, np.sort(keys)), "key conservation violated!"
    print("conservation check passed: every key came back exactly once")
    print(f"BGPQ stats: {pq.stats}")
    root = pq.store.root_lock
    print(f"root lock: {root.acquisitions} acquisitions, "
          f"{root.contention_ratio():.0%} contended")


if __name__ == "__main__":
    main()
