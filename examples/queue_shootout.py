"""Mini Table 2: all six priority queues on one synthetic workload.

Inserts N random 30-bit keys and deletes them all, for each of the six
designs the paper benchmarks, on the simulated TITAN X / 4x Xeon
E7-4870 machines, then prints the paper-style comparison row.

Run:  python examples/queue_shootout.py [n_keys]
"""

import sys
import time

from repro.bench import make_keys, make_queue, render_rows, run_insert_then_delete

QUEUES = ("TBB", "SprayList", "CBPQ", "LJSL", "P-Sync", "BGPQ")


def main(n_keys: int = 16384) -> None:
    keys = make_keys(n_keys, "random", seed=0)
    row = {"n_keys": n_keys}
    for name in QUEUES:
        pq, n_threads, batch = make_queue(name)
        t0 = time.perf_counter()
        times = run_insert_then_delete(pq, keys, n_threads, batch, verify=True)
        row[name] = times.total_ms
        print(f"{name:>10}: {times.total_ms:10.2f} simulated ms "
              f"(ins {times.insert_ms:.2f} + del {times.delete_ms:.2f}; "
              f"{time.perf_counter() - t0:.1f}s host; keys verified)")
    for name in QUEUES:
        if name != "BGPQ":
            row[f"B/{name[0]}"] = row[name] / row["BGPQ"]
    print()
    print(render_rows([row], "paper-style row (simulated ms and BGPQ speedups)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16384)
