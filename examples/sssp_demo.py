"""Dijkstra SSSP on the batched priority queue (extension workload).

Single-source shortest paths over a random directed graph: sequential
lazy-deletion Dijkstra versus the batched-relaxation variant on
NativeBGPQ, validated against each other (and against networkx).

Run:  python examples/sssp_demo.py [n_vertices]
"""

import sys
import time

import numpy as np

from repro.apps.sssp import UNREACHED, random_graph, sssp_batched, sssp_sequential


def main(n: int = 5000) -> None:
    graph = random_graph(n, avg_degree=8, max_weight=100, seed=1)
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    t0 = time.perf_counter()
    ref = sssp_sequential(graph, source=0)
    print(f"sequential Dijkstra: {time.perf_counter() - t0:.2f}s host")

    t0 = time.perf_counter()
    dist, sim_ns = sssp_batched(graph, source=0, batch=1024)
    print(f"batched Dijkstra:    {time.perf_counter() - t0:.2f}s host, "
          f"{sim_ns / 1e6:.3f} simulated GPU ms")

    assert np.array_equal(dist, ref), "distance mismatch!"
    reached = int((dist != UNREACHED).sum())
    finite = dist[dist != UNREACHED]
    print(f"distances agree; {reached}/{n} vertices reachable, "
          f"mean distance {finite.mean():.1f}, max {finite.max()}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)
