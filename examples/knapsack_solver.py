"""Branch-and-bound 0-1 knapsack with the batched priority queue (§6.5).

Generates a strongly-correlated instance (the classic hard family),
solves it three ways — DP oracle, sequential best-first, GPU-style
batched best-first — and reports agreement plus simulated device time.

Run:  python examples/knapsack_solver.py [n_items]
"""

import sys
import time

from repro.apps.knapsack import (
    generate,
    solve_batched,
    solve_dp,
    solve_sequential,
)


def main(n_items: int = 28) -> None:
    inst = generate(n_items, family="strongly_correlated", R=50, seed=402)
    print(f"instance: {inst.n_items} items, capacity {inst.capacity}, "
          f"family {inst.family}")

    t0 = time.perf_counter()
    optimal = solve_dp(inst)
    print(f"DP oracle:  optimum {optimal}  ({time.perf_counter() - t0:.2f}s host)")

    t0 = time.perf_counter()
    seq = solve_sequential(inst)
    print(f"sequential: optimum {seq.best_profit}, {seq.nodes_expanded} nodes, "
          f"{seq.nodes_pruned} pruned  ({time.perf_counter() - t0:.2f}s host)")

    t0 = time.perf_counter()
    gpu = solve_batched(inst, batch=1024)
    print(f"batched:    optimum {gpu.best_profit}, {gpu.nodes_expanded} nodes "
          f"(speculative batch work), {gpu.sim_time_ms:.3f} simulated GPU ms  "
          f"({time.perf_counter() - t0:.2f}s host)")

    assert seq.best_profit == optimal
    assert gpu.best_profit == optimal
    print("all three solvers agree on the optimum")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 28)
