"""A* route planning on an obstacle grid with the batched PQ (§6.5).

Generates a random grid (obstacles, guaranteed path), runs sequential
A* and the GPU-style batched A* with the paper's Manhattan heuristic
and the admissible Chebyshev alternative, and prints path costs,
expansion counts and simulated device time — plus an ASCII rendering
of a small grid.

Run:  python examples/route_planning.py [side] [obstacle_rate]
"""

import sys

import numpy as np

from repro.apps.astar import astar_batched, astar_sequential, generate_grid


def render(grid, max_side: int = 40) -> str:
    """ASCII map of the corner of the grid (S=start, T=target, #=wall)."""
    side = min(grid.height, max_side)
    rows = []
    for y in range(side):
        row = []
        for x in range(side):
            if (y, x) == grid.start:
                row.append("S")
            elif (y, x) == grid.target:
                row.append("T")
            else:
                row.append("#" if grid.blocked[y, x] else ".")
        rows.append("".join(row))
    return "\n".join(rows)


def main(side: int = 120, rate: float = 0.15) -> None:
    grid = generate_grid(side, rate, seed=3)
    print(f"grid {side}x{side}, {grid.obstacle_rate():.0%} obstacles, "
          f"{grid.start} -> {grid.target}")
    if side <= 40:
        print(render(grid))

    for heuristic in ("manhattan", "chebyshev"):
        seq = astar_sequential(grid, heuristic)
        bat = astar_batched(grid, heuristic, batch=512)
        print(f"\nheuristic={heuristic}"
              + ("  (the paper's choice; inadmissible on 8-way grids)"
                 if heuristic == "manhattan" else "  (admissible)"))
        print(f"  sequential: cost {seq.cost}, {seq.expanded} expanded")
        print(f"  batched:    cost {bat.cost}, {bat.expanded} expanded, "
              f"{bat.sim_time_ms:.3f} simulated GPU ms")
        if heuristic == "chebyshev":
            assert seq.cost == bat.cost, "admissible search must be optimal"

    print("\nwith the admissible heuristic both engines return the optimal path")


if __name__ == "__main__":
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    rate = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    main(side, rate)
