"""Memory-footprint study backing Table 1's "memory efficient" column.

The paper argues (§2.1, conclusion) that heap designs use k + O(1)
memory per stored key while skip lists pay ~2x in tower pointers (at
p = 1/2) plus tombstones, and that GPU memory scarcity makes this
decisive.  This bench fills every queue with the same keys and reports
bytes per stored key.
"""

import numpy as np

from repro.baselines import CBPQ, LJSkipListPQ, SprayListPQ, TbbHeapPQ
from repro.bench import make_keys, render_rows, save_results
from repro.core import BGPQ
from repro.sim import Engine

from conftest import run_once


def _fill(pq, keys, batch):
    eng = Engine(seed=0)

    def filler():
        for i in range(0, keys.size, batch):
            yield from pq.insert_op(keys[i : i + batch])

    eng.spawn(filler())
    eng.run()


def test_memory_per_key(benchmark):
    n = 1 << 15
    keys = make_keys(n, "random", 0)

    def run():
        rows = []
        queues = [
            ("BGPQ", BGPQ(node_capacity=1024, max_keys=2 * n), 1024),
            ("TBB", TbbHeapPQ(), 1024),
            ("CBPQ", CBPQ(), 1024),
            ("LJSL", LJSkipListPQ(), 1024),
            ("SprayList", SprayListPQ(), 1024),
        ]
        for name, pq, batch in queues:
            _fill(pq, keys, batch)
            rows.append(
                {
                    "queue": name,
                    "keys": len(pq),
                    "bytes": pq.memory_bytes(),
                    "bytes_per_key": pq.memory_bytes() / max(1, len(pq)),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_rows(rows, "memory footprint at equal occupancy"))
    save_results("memory_per_key", rows)

    per_key = {r["queue"]: r["bytes_per_key"] for r in rows}
    # heap designs: k + O(1) per key (8-byte keys + small control)
    assert per_key["BGPQ"] < 16
    assert per_key["TBB"] < 16
    # skip lists pay the tower-pointer overhead (~2x at p = 1/2)
    assert per_key["LJSL"] > 1.5 * per_key["TBB"]
    assert per_key["SprayList"] > 1.5 * per_key["TBB"]
