"""Table 2, "A-star": route planning across queues (§6.5).

Three scaled grids x two obstacle rates, Manhattan heuristic as in the
paper.  Shapes to reproduce: BGPQ beats TBB, SprayList and LJSL on
every grid; speedup over TBB does not degrade as the grid grows
(paper: it grows); higher obstacle rate does not help the baselines.
"""

from repro.bench import table2_astar

from conftest import report, run_once


def test_table2_astar(benchmark):
    rows = run_once(benchmark, table2_astar)
    report("table2_astar", rows, "Table 2 'A-star' (simulated ms, scaled grids)")

    for r in rows:
        label = f"{r['grid']} @ {r['obstacles']}"
        assert r["cost"] is not None, f"{label}: no path found"
        assert r["B/T"] > 1.0, f"{label}: BGPQ not faster than TBB ({r['B/T']:.2f})"
        # the low-contention designs must at least stay within a small
        # factor of BGPQ even on these frontier-starved scaled grids
        assert r["B/L"] > 0.3, f"{label}: LJSL unexpectedly dominant ({r['B/L']:.2f})"
        assert r["B/S"] > 0.3, f"{label}: SprayList unexpectedly dominant"
    # Scale caveat (recorded in EXPERIMENTS.md): the paper's grids have
    # frontiers of 10^4-10^5 open nodes, where the CPU designs are
    # queue-throughput-bound and BGPQ wins 12-33x.  The scaled 96-256
    # grids hold only a few hundred open nodes, so BGPQ's speculative
    # full-batch retrieval ("a thread block always retrieves a full
    # node ... for load balancing", §6.5) wastes most of its work and
    # the *serialisation-light* designs (LJSL, SprayList) can match or
    # beat it.  The contention-bound TBB comparison — the mechanism the
    # paper's speedups rest on — survives scaling, which is what the
    # per-cell assertion above checks.

    # larger grids keep (or grow) the BGPQ advantage over TBB
    by_grid = {}
    for r in rows:
        by_grid.setdefault(r["grid"], []).append(r["B/T"])
    small = sum(by_grid["5K*5K"]) / len(by_grid["5K*5K"])
    large = sum(by_grid["20K*20K"]) / len(by_grid["20K*20K"])
    assert large > 0.6 * small
