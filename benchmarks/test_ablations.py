"""Ablation benchmarks for the design choices DESIGN.md calls out.

* pBuffer batching: insert-heapify count per key versus insert
  granularity — the buffer's whole point (§4.1).
* TARGET/MARKED collaboration on/off under mixed load (§4.3).
* Batched-A* batch-size sweep: amortisation vs speculative waste.
* SprayList's relaxation: how far from the minimum its deletions land.
"""

import numpy as np

from repro.bench import make_keys, render_rows, save_results
from repro.core import BGPQ
from repro.device import GpuContext
from repro.sim import Engine

from conftest import run_once


def _drive(pq, batches, n_threads=32, seed=0, mixed=False):
    eng = Engine(seed=seed)

    def worker(i):
        r = np.random.default_rng(seed * 31 + i)
        for j in range(i, len(batches), n_threads):
            yield from pq.insert_op(batches[j])
            if mixed and r.random() < 0.5:
                yield from pq.deletemin_op(pq.k)

    for i in range(n_threads):
        eng.spawn(worker(i))
    return eng.run()


def test_pbuffer_amortizes_insert_heapify(benchmark):
    """Finer insert granularity => *fewer* heapifies per key thanks to
    the partial buffer accumulating sub-batch inserts."""
    k = 256
    n_keys = k * 256
    keys = make_keys(n_keys, "random", 0)

    def run():
        rows = []
        for granularity in (k, k // 4, k // 16):
            pq = BGPQ(GpuContext.default(), node_capacity=k, max_keys=n_keys * 2)
            batches = [keys[i : i + granularity] for i in range(0, n_keys, granularity)]
            ms = _drive(pq, batches) / 1e6
            rows.append(
                {
                    "insert_granularity": granularity,
                    "time_ms": ms,
                    "heapifies": pq.stats["insert_heapify"],
                    "heapify_per_1k_keys": 1000 * pq.stats["insert_heapify"] / n_keys,
                    "buffer_absorbed": pq.stats["partial_insert"],
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_rows(rows, "ablation: pBuffer insert batching"))
    save_results("ablation_pbuffer", rows)
    # one full-batch heapify per k keys regardless of granularity: the
    # buffer coalesces sub-batch inserts into full nodes
    per_key = [r["heapify_per_1k_keys"] for r in rows]
    assert max(per_key) <= 1.15 * min(per_key)
    # and sub-batch inserts hit the buffer fast path
    assert rows[-1]["buffer_absorbed"] > rows[0]["buffer_absorbed"]


def test_collaboration_ablation(benchmark):
    """TARGET/MARKED stealing must fire and not hurt (usually help)
    under mixed insert/delete contention."""
    k = 128
    keys = make_keys(k * 128, "random", 1)
    batches = [keys[i : i + k] for i in range(0, keys.size, k)]

    def run():
        out = {}
        for collab in (True, False):
            pq = BGPQ(
                GpuContext.default(),
                node_capacity=k,
                max_keys=keys.size * 2,
                collaboration=collab,
            )
            ms = _drive(pq, batches, mixed=True, seed=3) / 1e6
            out[collab] = {"time_ms": ms, "steals": pq.stats["collab_steals"]}
        return out

    out = run_once(benchmark, run)
    print(f"\nablation: collaboration on={out[True]} off={out[False]}")
    save_results(
        "ablation_collaboration",
        [{"collaboration": c, **v} for c, v in out.items()],
    )
    assert out[True]["steals"] > 0
    assert out[False]["steals"] == 0
    # collaboration must not be a significant regression
    assert out[True]["time_ms"] <= 1.25 * out[False]["time_ms"]


def test_astar_batch_size_sweep(benchmark):
    """Bigger batches amortise queue costs but expand speculatively;
    simulated time stays within a small factor across the sweep."""
    from repro.apps.astar import astar_batched, generate_grid

    grid = generate_grid(160, 0.10, seed=0)

    def run():
        rows = []
        for batch in (64, 256, 1024):
            r = astar_batched(grid, "manhattan", batch=batch)
            rows.append(
                {
                    "batch": batch,
                    "time_ms": r.sim_time_ms,
                    "expanded": r.expanded,
                    "cost": r.cost,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_rows(rows, "ablation: batched A* batch size"))
    save_results("ablation_astar_batch", rows)
    assert len({r["cost"] for r in rows}) == 1  # same path quality
    # speculative work grows with batch...
    assert rows[-1]["expanded"] >= rows[0]["expanded"]
    # ...but amortisation keeps the time in a narrow band
    times = [r["time_ms"] for r in rows]
    assert max(times) <= 3 * min(times)


def test_spraylist_relaxation_quality(benchmark):
    """Quantify the relaxation: sprayed deletions come from the first
    O(p log^3 p) keys, not the exact minimum."""
    from repro.baselines import SprayListPQ

    def run():
        pq = SprayListPQ(n_threads=80, seed=5)
        n = 20_000
        eng = Engine(seed=1)

        def filler():
            keys = np.arange(n)
            for i in range(0, n, 64):
                yield from pq.insert_op(keys[i : i + 64])

        eng.spawn(filler())
        eng.run()

        got = []
        eng2 = Engine(seed=2)

        def deleter(i):
            for _ in range(4):
                g = yield from pq.deletemin_op(8)
                got.append(g)

        for i in range(8):
            eng2.spawn(deleter(i))
        eng2.run()
        return np.sort(np.concatenate(got))

    taken = run_once(benchmark, run)
    rank_bound = 80 * int(np.log2(80)) ** 3  # p log^3 p
    print(f"\nspray relaxation: worst rank {taken.max()} (bound {rank_bound})")
    save_results(
        "ablation_spray_relaxation",
        [{"deleted": int(taken.size), "worst_rank": int(taken.max()), "bound": rank_bound}],
    )
    assert taken.max() < rank_bound


def test_insert_direction_ablation(benchmark):
    """§3.3: the Hunt-style bottom-up insertion variant performs
    similarly to the default top-down approach."""
    from repro.core import BGPQBottomUp

    k = 256
    keys = make_keys(k * 128, "random", 7)
    batches = [keys[i : i + k] for i in range(0, keys.size, k)]

    def run():
        out = {}
        for label, cls in (("top_down", BGPQ), ("bottom_up", BGPQBottomUp)):
            pq = cls(GpuContext.default(), node_capacity=k, max_keys=keys.size * 2)
            ms = _drive(pq, batches, n_threads=32, seed=5) / 1e6
            out[label] = {
                "time_ms": ms,
                "heapifies": pq.stats["insert_heapify"],
            }
        return out

    out = run_once(benchmark, run)
    print(f"\nablation: insert direction {out}")
    save_results(
        "ablation_insert_direction",
        [{"variant": v, **d} for v, d in out.items()],
    )
    ratio = out["bottom_up"]["time_ms"] / out["top_down"]["time_ms"]
    assert 0.4 <= ratio <= 2.5, f"§3.3 'similar performance' violated: {ratio:.2f}x"
