"""Table 2, "0-1 KS": branch-and-bound knapsack across queues (§6.5).

Five scaled strongly-correlated instances stand in for the paper's
2^200..2^1000 search trees.  Shapes to reproduce: BGPQ beats TBB,
SprayList and LJSL on every instance; all solvers agree on the
optimum (checked inside the experiment against the batched result,
and here against the DP oracle).
"""

from repro.apps.knapsack import generate, solve_dp
from repro.bench import KNAPSACK_SIZES, table2_knapsack
from repro.bench.experiments import KNAPSACK_SEEDS

from conftest import report, run_once


def test_table2_knapsack(benchmark):
    rows = run_once(benchmark, table2_knapsack)
    report("table2_knapsack", rows, "Table 2 '0-1 KS' (simulated ms, scaled trees)")

    for r in rows:
        label = f"{r['paper_items']} items (scaled {r['items']})"
        for ratio in ("B/T", "B/S", "B/L"):
            assert r[ratio] > 1.0, f"{label}: BGPQ not fastest ({ratio}={r[ratio]:.2f})"
        # exactness: every queue agreed (asserted inside), and the
        # agreed optimum matches the DP oracle
        inst = generate(
            r["items"], family=r["family"], R=50, seed=KNAPSACK_SEEDS[r["items"]]
        )
        assert r["optimal"] == solve_dp(inst), label


def test_knapsack_sizes_cover_paper_range(benchmark):
    run_once(benchmark, lambda: KNAPSACK_SIZES)
    assert sorted(KNAPSACK_SIZES) == [200, 400, 600, 800, 1000]
