"""Table 2, "Util.": performance under different heap utilization.

Pre-fill to empty/1M/8M occupancy, then run insert+deletemin pairs
that keep occupancy constant (§6.4).  Shapes to reproduce: BGPQ stays
flat across occupancy and beats every CPU baseline; SprayList is at
its worst on an empty queue (spray collisions); TBB degrades as depth
grows; LJSL stays roughly flat but slow.
"""

from repro.bench import table2_util

from conftest import report, run_once


def test_table2_util(benchmark):
    rows = run_once(benchmark, table2_util)
    report("table2_util", rows, "Table 2 'Util.' (simulated ms, scaled sizes)")

    by_init = {r["init"]: r for r in rows}
    for r in rows:
        for ratio in ("B/T", "B/S", "B/L"):
            assert r[ratio] > 1.0, f"init={r['init']}: BGPQ not fastest ({ratio})"

    # BGPQ flat across utilization (paper: "maintains at the same level")
    bgpq = [r["BGPQ"] for r in rows]
    assert max(bgpq) <= 1.5 * min(bgpq)

    # SprayList suffers most when the queue is empty (paper §6.4)
    assert by_init["empty"]["SprayList"] > 1.2 * by_init["1M"]["SprayList"]
    assert by_init["empty"]["SprayList"] > 1.2 * by_init["8M"]["SprayList"]

    # LJSL roughly flat (paper: ~5% slowdown; allow slack)
    ljsl = [r["LJSL"] for r in rows]
    assert max(ljsl) <= 1.5 * min(ljsl)
