"""Table 2, "Util.": performance under different heap utilization.

Pre-fill to empty/1M/8M occupancy, then run insert+deletemin pairs
that keep occupancy constant (§6.4).  Shapes to reproduce: BGPQ stays
flat across occupancy and beats every CPU baseline; SprayList is at
its worst on an empty queue (spray collisions); TBB degrades as depth
grows; LJSL stays roughly flat but slow.
"""

from repro.bench import table2_util

from conftest import report, run_once


def test_table2_util(benchmark):
    rows = run_once(benchmark, table2_util)
    report("table2_util", rows, "Table 2 'Util.' (simulated ms, scaled sizes)")

    by_init = {r["init"]: r for r in rows}
    for r in rows:
        for ratio in ("B/T", "B/S", "B/L"):
            assert r[ratio] > 1.0, f"init={r['init']}: BGPQ not fastest ({ratio})"

    # BGPQ flat across utilization (paper: "maintains at the same level")
    bgpq = [r["BGPQ"] for r in rows]
    assert max(bgpq) <= 1.5 * min(bgpq)

    # SprayList suffers most when the queue is empty (paper §6.4)
    assert by_init["empty"]["SprayList"] > 1.2 * by_init["1M"]["SprayList"]
    assert by_init["empty"]["SprayList"] > 1.2 * by_init["8M"]["SprayList"]

    # LJSL roughly flat (paper: ~5% slowdown; allow slack)
    ljsl = [r["LJSL"] for r in rows]
    assert max(ljsl) <= 1.5 * min(ljsl)


def test_util_timeline_cross_checks_lock_accounting():
    """Cross-check the obs utilization timeline against the locks' own
    wait accounting on a BGPQ run of the same shape §6.4 measures.

    The table above reports where simulated time went via the queues'
    aggregate counters; the event-sourced timeline must tell the same
    story: (1) its summed wait time equals the locks'/conditions'
    ``total_wait_ns`` exactly, (2) every time bucket partitions into
    busy + wait + idle, and (3) total thread-time adds up to
    threads x makespan.
    """
    import pytest

    from repro.obs import utilization_timeline, wait_intervals
    from repro.obs.workload import run_traced_mixed

    run = run_traced_mixed(threads=4, ops=8, k=8, seed=1)
    tl = utilization_timeline(run.events, run.makespan_ns, buckets=16)

    lock_wait = sum(lk.total_wait_ns for lk in run.pq.store.locks)
    lock_wait += (run.pq.root_avail.total_wait_ns
                  + run.pq.node_filled.total_wait_ns)
    event_wait = sum(
        end - start
        for ivs in wait_intervals(run.events).values()
        for start, end, _ in ivs
    )
    timeline_wait = sum(t["wait_ns"] for t in tl["per_thread"].values())
    assert event_wait == pytest.approx(lock_wait, rel=1e-12)
    assert timeline_wait == pytest.approx(lock_wait, rel=1e-9)

    for row in tl["buckets"]:
        assert row["busy"] + row["wait"] + row["idle"] == pytest.approx(1.0)

    total = sum(
        t["busy_ns"] + t["wait_ns"] + t["idle_ns"]
        for t in tl["per_thread"].values()
    )
    assert total == pytest.approx(tl["n_threads"] * run.makespan_ns, rel=1e-9)
