"""Table 1: the design-choice feature matrix (regenerated from code)."""

from repro.bench import render_table1, save_results, table1_features

from conftest import run_once


def test_table1_features(benchmark):
    rows = run_once(benchmark, lambda: [f.row() for f in table1_features()])
    print()
    print(render_table1())
    save_results("table1_features", rows)

    by_name = {r["Implementation"]: r for r in rows}
    # the paper's claims, row by row
    assert by_name["BGPQ"]["Data Parallelism"] == "yes"
    assert by_name["BGPQ"]["Thread Collaboration"] == "yes"
    assert by_name["BGPQ"]["Memory Efficient"] == "yes"
    assert by_name["BGPQ"]["Linearizable"] == "yes"
    assert by_name["BGPQ"]["Data Structure"] == "Heap"
    assert by_name["Hunt"]["Data Parallelism"] == "no"
    assert by_name["CBPQ"]["Thread Collaboration"] == "yes"
    assert by_name["P-Sync"]["Data Parallelism"] == "yes"
    assert by_name["P-Sync"]["Thread Collaboration"] == "no"
    assert by_name["GFSL"]["Data Parallelism"] == "yes"
    assert by_name["STSL"]["Linearizable"] == "yes"
    # only the two heap GPU designs + Hunt are memory efficient
    efficient = [n for n, r in by_name.items() if r["Memory Efficient"] == "yes"]
    assert sorted(efficient) == ["BGPQ", "Hunt", "P-Sync"]
