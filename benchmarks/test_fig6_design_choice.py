"""Figure 6: BGPQ design-choice sweeps.

6a/6b: insert / deletemin time versus node capacity and thread-block
size.  6c: time versus number of thread blocks.  The paper's findings
to reproduce:

* larger node capacity helps both operations (more intra-node
  parallelism);
* ever-larger thread blocks stop helping (intra-block sync overhead);
* more thread blocks help until root contention saturates the gain.
"""

from repro.bench import ascii_chart, fig6_blocks_sweep, fig6_capacity_sweep

from conftest import report, run_once


def _by(rows, **filters):
    out = [r for r in rows if all(r[k] == v for k, v in filters.items())]
    assert out, f"no rows matching {filters}"
    return out


def test_fig6a_insert_and_6b_delete(benchmark):
    rows = run_once(benchmark, fig6_capacity_sweep)
    report("fig6ab_capacity", rows, "Fig 6a/6b: time (ms) vs node capacity x block size")
    at512 = {r["capacity"]: r["insert_ms"] for r in rows if r["block_size"] == 512}
    print()
    print(ascii_chart(at512, label="Fig 6a (block=512): insert ms vs node capacity"))

    # (6a/6b) at the paper's block size, bigger batches beat small ones
    for metric in ("insert_ms", "delete_ms"):
        at512 = {r["capacity"]: r[metric] for r in _by(rows, block_size=512)}
        assert at512[1024] < at512[64], (
            f"{metric}: capacity 1024 should beat 64 at block size 512"
        )

    # block-size sweet spot: 1024-wide blocks gain little or regress
    # versus 512 at the largest capacity (sync overhead, §6.2)
    ins512 = _by(rows, block_size=512, capacity=1024)[0]["insert_ms"]
    ins1024 = _by(rows, block_size=1024, capacity=1024)[0]["insert_ms"]
    assert ins1024 > 0.8 * ins512  # no large win from doubling the block


def test_fig6c_thread_blocks(benchmark):
    rows = run_once(benchmark, fig6_blocks_sweep)
    report("fig6c_blocks", rows, "Fig 6c: time (ms) vs number of thread blocks")
    print()
    print(ascii_chart(
        {r["blocks"]: r["insert_ms"] + r["delete_ms"] for r in rows},
        label="Fig 6c: ins+del ms vs thread blocks",
    ))

    times = {r["blocks"]: r["insert_ms"] + r["delete_ms"] for r in rows}
    # more blocks help at the low end...
    assert times[8] < times[1]
    # ...but the return diminishes: the 32->64 step gains far less
    # than the 1->2 step (root contention, §6.2; axis compressed at
    # scaled heap depth — see the sweep's docstring)
    gain_low = times[1] / times[2]
    gain_high = times[32] / times[64]
    assert gain_high < gain_low
