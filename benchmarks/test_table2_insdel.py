"""Table 2, "Ins & Del": the headline synthetic comparison.

Six queues x three sizes x three key orders; insert everything, delete
everything.  Shape assertions follow the paper's Table 2: BGPQ wins
every cell; P-Sync is the closest; TBB is the slowest; the BGPQ/TBB
ratio grows with workload size.
"""

import pytest

from repro.bench import speedup_summary, table2_insdel

from conftest import report, run_once

RATIOS = ("B/T", "B/S", "B/C", "B/L", "B/P")


@pytest.fixture(scope="module")
def rows():
    return table2_insdel()


def test_table2_insdel(benchmark, rows):
    run_once(benchmark, lambda: rows)
    report("table2_insdel", rows, "Table 2 'Ins & Del' (simulated ms, scaled sizes)")
    print("speedups:", speedup_summary(rows, RATIOS))

    for r in rows:
        cell = f"{r['size']}/{r['order']}"
        # BGPQ beats every baseline in every cell
        for ratio in RATIOS:
            assert r[ratio] > 1.0, f"{cell}: BGPQ not fastest ({ratio}={r[ratio]:.2f})"
        if r["size"] != "64M":
            continue  # smaller scaled cells are degenerate (few batches)
        # at the largest size: TBB is the slowest baseline and P-Sync
        # the fastest, matching the paper's Table 2 ordering
        assert r["TBB"] >= r["SprayList"], cell
        assert r["TBB"] >= r["CBPQ"], cell
        assert all(r["P-Sync"] <= r[q] for q in ("TBB", "SprayList", "CBPQ", "LJSL")), cell


def test_speedup_grows_with_size(benchmark, rows):
    """Paper: B/T grows 46x -> 81x from 1M to 64M keys."""
    run_once(benchmark, lambda: rows)
    random_rows = {r["size"]: r for r in rows if r["order"] == "random"}
    assert random_rows["1M"]["B/T"] < random_rows["64M"]["B/T"]
    assert random_rows["8M"]["B/T"] < random_rows["64M"]["B/T"]


def test_speedups_in_paper_band(benchmark, rows):
    """At the largest size the ratios land within a small factor of the
    paper's (scaled substrate; see EXPERIMENTS.md per-cell record)."""
    run_once(benchmark, lambda: rows)
    big = [r for r in rows if r["size"] == "64M"]
    paper = {"B/T": 81.3, "B/S": 13.3, "B/C": 20.5, "B/L": 50.9, "B/P": 9.2}
    for r in big:
        for k, expect in paper.items():
            assert expect / 4 <= r[k] <= expect * 4, (
                f"{r['order']}: {k}={r[k]:.1f} vs paper {expect} — outside 4x band"
            )
