"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark runs its experiment exactly once (the measured
quantity is *simulated* time; wall time of the simulation itself is
what pytest-benchmark records), prints the regenerated paper table,
and archives the rows under ``bench_results/`` for EXPERIMENTS.md.
"""

import pytest

from repro.bench import render_rows, save_results, scale


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(autouse=True, scope="session")
def _announce_scale():
    print(f"\n[repro] workload scale factor: 1/{scale()} of the paper's sizes "
          f"(set REPRO_SCALE to change)")
    yield


def report(name: str, rows: list[dict], title: str) -> None:
    print()
    print(render_rows(rows, title))
    path = save_results(name, rows, meta={"scale": scale()})
    print(f"[saved {path}]")
